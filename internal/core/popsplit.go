package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/kkt"
	"repro/internal/lp"
	"repro/internal/mcf"
	"repro/internal/milp"
	"repro/internal/obs"
)

// POPSplitGapProblem searches for adversarial demands against POP *with
// client splitting* — the Appendix-A extension. A demand whose volume
// reaches SplitThreshold is halved repeatedly (up to MaxSplits times per
// client, the appendix's variation), producing 2^s equal clients that are
// partitioned independently.
//
// Appendix A shows the extended heuristic still admits a convex encoding:
// flows for every possible split level are constructed a priori and big-M
// rows activate exactly the level the demand's volume selects. Here the
// level selection is a one-hot binary vector per demand, linked to the
// demand by indicator rows, and each (level, partition) aggregate becomes a
// virtual demand inside the partition's certified max-flow.
type POPSplitGapProblem struct {
	Inst           *mcf.Instance
	Partitions     int
	Instantiations int
	Rng            *rand.Rand
	SplitThreshold float64
	MaxSplits      int
	Input          InputConstraints
}

// levelOf returns the split level client splitting applies to volume v:
// the number of halvings performed (capped at maxSplits).
func levelOf(v, threshold float64, maxSplits int) int {
	s := 0
	for v >= threshold && s < maxSplits {
		v /= 2
		s++
	}
	return s
}

// levelBounds gives the volume interval [lo, hi] selecting level s.
func levelBounds(s, maxSplits int, threshold, maxDemand float64) (float64, float64) {
	if s == 0 {
		return 0, threshold
	}
	lo := threshold * float64(int(1)<<(s-1))
	if s == maxSplits {
		return lo, maxDemand
	}
	return lo, threshold * float64(int(1)<<s)
}

// slotPlan is the pre-drawn partition assignment for every potential slot:
// plan[r][k][s][i] is the partition of the i-th client of demand k at split
// level s in instantiation r.
type slotPlan [][][][]int

func drawSlotPlan(n, instantiations, maxSplits, partitions int, rng *rand.Rand) slotPlan {
	plan := make(slotPlan, instantiations)
	for r := range plan {
		plan[r] = make([][][]int, n)
		for k := 0; k < n; k++ {
			plan[r][k] = make([][]int, maxSplits+1)
			for s := 0; s <= maxSplits; s++ {
				slots := make([]int, 1<<s)
				for i := range slots {
					slots[i] = rng.Intn(partitions)
				}
				plan[r][k][s] = slots
			}
		}
	}
	return plan
}

type popSplitBuild struct {
	model   *milp.Model
	demands []lp.VarID
	levels  [][]lp.VarID // levels[k][s]: one-hot split-level selector
	optObj  lp.Expr
	heur    lp.Expr
	plan    slotPlan
}

func (pr *POPSplitGapProblem) validate() error {
	if pr.Partitions < 1 {
		return fmt.Errorf("core: POP split needs >= 1 partition")
	}
	if pr.SplitThreshold <= 0 || pr.SplitThreshold > pr.Input.MaxDemand {
		return fmt.Errorf("core: SplitThreshold %g out of (0, %g]", pr.SplitThreshold, pr.Input.MaxDemand)
	}
	if pr.MaxSplits < 1 {
		return fmt.Errorf("core: MaxSplits must be >= 1")
	}
	if pr.Rng == nil {
		return fmt.Errorf("core: POP split needs a seeded Rng")
	}
	return nil
}

func (pr *POPSplitGapProblem) build() (*popSplitBuild, error) {
	n := pr.Inst.Demands.Len()
	pr.Input.fillHosePairs(pr.Inst.Demands)
	if err := pr.Input.validate(n); err != nil {
		return nil, err
	}
	if err := pr.validate(); err != nil {
		return nil, err
	}
	r := pr.Instantiations
	if r < 1 {
		r = 1
	}
	p := lp.NewProblem("pop-split-gap", lp.Maximize)
	m := milp.NewModel(p)
	b := &popSplitBuild{model: m}
	b.demands = pr.Input.addDemandVars(m, n)
	b.plan = drawSlotPlan(n, r, pr.MaxSplits, pr.Partitions, pr.Rng)

	// OPT side (client splitting does not change the optimum).
	optFlow := mcf.BuildInnerMaxFlow("opt", pr.Inst, func(k int) kkt.AffineRHS {
		return kkt.Var(b.demands[k], 1, 0)
	}, 1, nil, pr.Input.MaxDemand)
	optRes, err := kkt.Emit(m, optFlow.LP, false)
	if err != nil {
		return nil, err
	}
	b.optObj = optRes.Obj

	// One-hot split-level selectors linked to the demand volume.
	maxD := pr.Input.MaxDemand
	b.levels = make([][]lp.VarID, n)
	for k := 0; k < n; k++ {
		one := lp.NewExpr()
		b.levels[k] = make([]lp.VarID, pr.MaxSplits+1)
		for s := 0; s <= pr.MaxSplits; s++ {
			v := m.AddBinary(fmt.Sprintf("lvl%d.%d", k, s))
			b.levels[k][s] = v
			one = one.Add(v, 1)
			lo, hi := levelBounds(s, pr.MaxSplits, pr.SplitThreshold, maxD)
			// v=1 => lo <= d_k <= hi (boundaries inclusive on both sides —
			// the appendix's epsilon; the maximizer resolves ties and the
			// verification step reports the exact heuristic semantics).
			m.AddIndicatorLE(fmt.Sprintf("lvl%d.%d.hi", k, s), v,
				lp.NewExpr().Add(b.demands[k], 1), hi, maxD)
			m.AddIndicatorGE(fmt.Sprintf("lvl%d.%d.lo", k, s), v,
				lp.NewExpr().Add(b.demands[k], 1), lo, maxD)
		}
		p.AddConstraint(fmt.Sprintf("lvl%d.one", k), one, lp.EQ, 1)
	}

	// Heuristic side: per instantiation and partition, a certified max-flow
	// whose virtual demands are the (demand, level) slot aggregates.
	capFrac := 1 / float64(pr.Partitions)
	inv := 1 / float64(r)
	for ri := 0; ri < r; ri++ {
		for c := 0; c < pr.Partitions; c++ {
			in, obj, err := pr.buildPartitionLP(b, ri, c, capFrac)
			if err != nil {
				return nil, err
			}
			if in == nil {
				continue
			}
			res, err := kkt.Emit(m, in, true)
			if err != nil {
				return nil, err
			}
			// Translate the local objective expression onto emitted vars.
			for _, t := range obj.Terms {
				b.heur = b.heur.Add(res.X[t.Var], t.Coef*inv)
			}
		}
	}

	for _, t := range b.optObj.Terms {
		p.SetObj(t.Var, p.Obj(t.Var)+t.Coef)
	}
	for _, t := range b.heur.Terms {
		p.SetObj(t.Var, p.Obj(t.Var)-t.Coef)
	}
	return b, nil
}

// buildPartitionLP assembles the inner LP of one (instantiation, partition):
// flow variables per (demand, level, path), volume rows tying flow to the
// aggregated slot volume count/2^s * d_k, and gating rows zeroing levels the
// demand did not select. Returns nil when no slot maps to the partition.
// The second return value indexes the objective over *local* variables.
func (pr *POPSplitGapProblem) buildPartitionLP(b *popSplitBuild, ri, c int, capFrac float64) (*kkt.InnerLP, lp.Expr, error) {
	n := pr.Inst.Demands.Len()
	maxD := pr.Input.MaxDemand
	in := &kkt.InnerLP{Name: fmt.Sprintf("split%d.%d", ri, c)}
	var obj lp.Expr
	type group struct {
		k, s  int
		count int
		vars  []int // local flow var per path
	}
	var groups []group
	for k := 0; k < n; k++ {
		for s := 0; s <= pr.MaxSplits; s++ {
			count := 0
			for _, part := range b.plan[ri][k][s] {
				if part == c {
					count++
				}
			}
			if count == 0 {
				continue
			}
			g := group{k: k, s: s, count: count}
			for range pr.Inst.Paths[k] {
				g.vars = append(g.vars, in.NumVars)
				in.Obj = append(in.Obj, 1)
				in.VarUB = append(in.VarUB, maxD)
				in.NumVars++
			}
			groups = append(groups, g)
		}
	}
	if len(groups) == 0 {
		return nil, lp.Expr{}, nil
	}
	for gi, g := range groups {
		frac := float64(g.count) / float64(int(1)<<g.s)
		volRow := kkt.Row{
			Name: fmt.Sprintf("vol%d", gi), Rel: lp.LE,
			RHS:     kkt.Var(b.demands[g.k], frac, 0),
			DualUB:  1,
			SlackUB: maxD,
		}
		gateRow := kkt.Row{
			Name: fmt.Sprintf("gate%d", gi), Rel: lp.LE,
			RHS:     kkt.Var(b.levels[g.k][g.s], maxD, 0),
			DualUB:  1,
			SlackUB: maxD,
		}
		for _, v := range g.vars {
			volRow.Terms = append(volRow.Terms, kkt.InnerTerm{Var: v, Coef: 1})
			gateRow.Terms = append(gateRow.Terms, kkt.InnerTerm{Var: v, Coef: 1})
			obj = obj.Add(lp.VarID(v), 1)
		}
		in.AddRow(volRow)
		in.AddRow(gateRow)
	}
	for e := 0; e < pr.Inst.G.NumEdges(); e++ {
		capVal := pr.Inst.G.Edge(e).Capacity * capFrac
		row := kkt.Row{
			Name: fmt.Sprintf("cap%d", e), Rel: lp.LE,
			RHS: kkt.Constant(capVal), DualUB: 1, SlackUB: capVal,
		}
		for _, g := range groups {
			for pi, path := range pr.Inst.Paths[g.k] {
				if path.Contains(e) {
					row.Terms = append(row.Terms, kkt.InnerTerm{Var: g.vars[pi], Coef: 1})
				}
			}
		}
		in.AddRow(row)
	}
	return in, obj, nil
}

// Stats reports the meta model's size without solving.
func (pr *POPSplitGapProblem) Stats() (ModelStats, error) {
	b, err := pr.build()
	if err != nil {
		return ModelStats{}, err
	}
	return statsOf(b.model), nil
}

// Solve runs the white-box search and verifies against a direct evaluation
// of split POP on the same slot plan.
func (pr *POPSplitGapProblem) Solve(opts milp.Options) (*Result, error) {
	var tm PhaseTimings
	var b *popSplitBuild
	var err error
	tm.Build, err = obs.TimePhase(opts.Tracer, "build", func() error {
		var berr error
		b, berr = pr.build()
		if berr != nil {
			return berr
		}
		if opts.Polish == nil {
			polish := pr.polisher(b)
			opts.Polish = polish
			x := make([]float64, b.model.P.NumVars())
			for _, dv := range b.demands {
				x[dv] = pr.Input.MaxDemand
			}
			if obj, sol, ok := polish(x); ok {
				opts.Seeds = append(opts.Seeds, milp.Seed{Objective: obj, X: sol})
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var res *milp.Result
	tm.Solve, err = obs.TimePhase(opts.Tracer, "solve", func() error {
		var serr error
		res, serr = milp.Solve(b.model, opts)
		return serr
	})
	if err != nil {
		return nil, err
	}
	out := &Result{Stats: statsOf(b.model), Timings: tm, Solver: res}
	if res.X == nil {
		return out, nil
	}
	out.ModelGap = res.Objective
	out.Demands = make([]float64, len(b.demands))
	for k, dv := range b.demands {
		out.Demands[k] = math.Max(pr.Input.MinDemand, math.Min(pr.Input.MaxDemand, res.X[dv]))
	}
	out.Timings.Verify, err = obs.TimePhase(opts.Tracer, "verify", func() error {
		return pr.verify(out, b.plan)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// evalSplitPOP prices split POP exactly under the fixed slot plan and
// returns the mean total flow across instantiations.
func (pr *POPSplitGapProblem) evalSplitPOP(d []float64, plan slotPlan) (float64, error) {
	at := pr.Inst.WithVolumes(d)
	sum := 0.0
	for _, instPlan := range plan {
		var clients []mcf.Client
		var assign []int
		for k, v := range d {
			s := levelOf(v, pr.SplitThreshold, pr.MaxSplits)
			vol := v / float64(int(1)<<s)
			for i, part := range instPlan[k][s] {
				_ = i
				clients = append(clients, mcf.Client{Demand: k, Volume: vol})
				assign = append(assign, part)
			}
		}
		f, err := mcf.SolvePOPAssigned(at, clients, assign, pr.Partitions)
		if err != nil {
			return 0, err
		}
		sum += f.Total
	}
	return sum / float64(len(plan)), nil
}

func (pr *POPSplitGapProblem) polisher(b *popSplitBuild) func(x []float64) (float64, []float64, bool) {
	cache := newPriceCache(512)
	price := func(d []float64) (float64, bool) {
		at := pr.Inst.WithVolumes(d)
		opt, err := mcf.SolveMaxFlow(at)
		if err != nil {
			return 0, false
		}
		heur, err := pr.evalSplitPOP(d, b.plan)
		if err != nil {
			return 0, false
		}
		return opt.Total - heur, true
	}
	return func(x []float64) (float64, []float64, bool) {
		raw := make([]float64, len(b.demands))
		for k, dv := range b.demands {
			raw[k] = x[dv]
		}
		d, ok := pr.Input.sanitize(raw)
		if !ok {
			return 0, nil, false
		}
		gap, priced := cache.price(d, price)
		if !priced {
			return 0, nil, false
		}
		sol := append([]float64(nil), x...)
		for k, dv := range b.demands {
			sol[dv] = d[k]
		}
		return gap, sol, true
	}
}

func (pr *POPSplitGapProblem) verify(out *Result, plan slotPlan) error {
	at := pr.Inst.WithVolumes(out.Demands)
	opt, err := mcf.SolveMaxFlow(at)
	if err != nil {
		return fmt.Errorf("core: verifying OPT: %w", err)
	}
	heur, err := pr.evalSplitPOP(out.Demands, plan)
	if err != nil {
		return fmt.Errorf("core: verifying split POP: %w", err)
	}
	out.OptValue = opt.Total
	out.HeurValue = heur
	out.Gap = opt.Total - heur
	out.NormalizedGap = out.Gap / pr.Inst.G.TotalCapacity()
	return nil
}
