package milp

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/faultinject"
	"repro/internal/lp"
)

// resumeModel builds a randomized multi-constraint knapsack big enough to
// take several waves (a single-constraint knapsack's relaxation has at most
// one fractional variable, so its tree is a short path): the search tree is
// what the kill-and-resume property is quantified over.
func resumeModel(n int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	p := lp.NewProblem("resume-ks", lp.Maximize)
	m := NewModel(p)
	vars := make([]lp.VarID, n)
	for i := 0; i < n; i++ {
		vars[i] = m.AddBinary(fmt.Sprintf("x%d", i))
		p.SetObj(vars[i], 1+9*rng.Float64())
	}
	for c := 0; c < 3; c++ {
		expr := lp.NewExpr()
		total := 0.0
		for i := 0; i < n; i++ {
			w := 1 + 4*rng.Float64()
			total += w
			expr = expr.Add(vars[i], w)
		}
		p.AddConstraint(fmt.Sprintf("w%d", c), expr, lp.LE, 0.4*total)
	}
	return m
}

// TestKillAndResumeMatchesUninterrupted is the tentpole property: for every
// wave k at which the search can die, resuming from the checkpoint written
// at the last complete wave boundary finishes with the bit-identical
// incumbent, bound and effort counters of the run that was never killed —
// at one worker and at four (the checkpoint is written under the same
// Batch, which is all the tree depends on).
func TestKillAndResumeMatchesUninterrupted(t *testing.T) {
	m := resumeModel(10, 7)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			base := Options{Workers: workers, Batch: 4, WarmStart: true}
			ref := solve(t, m, base)
			if ref.Status != StatusOptimal {
				t.Fatalf("reference run not optimal: %v", ref.Status)
			}
			killed := 0
			for k := 1; ; k++ {
				path := filepath.Join(t.TempDir(), "bnb.ckpt")
				plan, err := faultinject.Parse(fmt.Sprintf("deadline:%d", k), 0)
				if err != nil {
					t.Fatalf("plan: %v", err)
				}
				opts := base
				opts.Checkpoint = path
				opts.Faults = plan
				dead, err := Solve(m, opts)
				if err != nil {
					t.Fatalf("kill at wave %d: %v", k, err)
				}
				if dead.Status == StatusOptimal {
					// The search finished before wave k: the fault never
					// fired and there is nothing left to kill.
					if killed == 0 {
						t.Fatal("reference search finished before the first kill point; enlarge the model")
					}
					break
				}
				killed++
				snap, err := checkpoint.Load(path)
				if err != nil {
					t.Fatalf("load at wave %d: %v", k, err)
				}
				if snap.BnB == nil {
					t.Fatalf("wrong snapshot kind at wave %d", k)
				}
				res, err := Resume(m, snap.BnB, base)
				if err != nil {
					t.Fatalf("resume at wave %d: %v", k, err)
				}
				if res.Status != ref.Status ||
					res.Objective != ref.Objective ||
					res.Bound != ref.Bound ||
					res.Nodes != ref.Nodes ||
					res.LPSolves != ref.LPSolves {
					t.Fatalf("resume at wave %d diverged:\n got %v obj=%v bound=%v nodes=%d lp=%d\nwant %v obj=%v bound=%v nodes=%d lp=%d",
						k, res.Status, res.Objective, res.Bound, res.Nodes, res.LPSolves,
						ref.Status, ref.Objective, ref.Bound, ref.Nodes, ref.LPSolves)
				}
				for i, x := range ref.X {
					if res.X[i] != x {
						t.Fatalf("resume at wave %d: X[%d] = %v, want %v", k, i, res.X[i], x)
					}
				}
			}
			if killed < 2 {
				t.Fatalf("only %d kill points exercised; enlarge the model", killed)
			}
		})
	}
}

// TestResumeAcrossWorkerCounts checks the documented contract that Workers
// is excluded from the fingerprint: a run checkpointed under 4 workers
// resumes under 1 (and vice versa) to the identical answer.
func TestResumeAcrossWorkerCounts(t *testing.T) {
	m := resumeModel(10, 7)
	ref := solve(t, m, Options{Batch: 4})
	path := filepath.Join(t.TempDir(), "bnb.ckpt")
	plan, _ := faultinject.Parse("deadline:3", 0)
	_, err := Solve(m, Options{Workers: 4, Batch: 4, Checkpoint: path, Faults: plan})
	if err != nil {
		t.Fatalf("kill: %v", err)
	}
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	res, err := Resume(m, snap.BnB, Options{Workers: 1, Batch: 4})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if res.Objective != ref.Objective || res.Nodes != ref.Nodes {
		t.Fatalf("cross-worker resume diverged: obj %v nodes %d, want %v / %d",
			res.Objective, res.Nodes, ref.Objective, ref.Nodes)
	}
}

func TestResumeRejectsFingerprintMismatch(t *testing.T) {
	m := resumeModel(8, 3)
	path := filepath.Join(t.TempDir(), "bnb.ckpt")
	plan, _ := faultinject.Parse("deadline:2", 0)
	if _, err := Solve(m, Options{Batch: 4, Checkpoint: path, Faults: plan}); err != nil {
		t.Fatalf("kill: %v", err)
	}
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	var mm *checkpoint.MismatchError
	if _, err := Resume(m, snap.BnB, Options{Batch: 8}); !errors.As(err, &mm) {
		t.Fatalf("batch mismatch not rejected: %v", err)
	}
	other := resumeModel(9, 3)
	if _, err := Resume(other, snap.BnB, Options{Batch: 4}); !errors.As(err, &mm) {
		t.Fatalf("model mismatch not rejected: %v", err)
	}
	if _, err := Resume(m, nil, Options{Batch: 4}); err == nil {
		t.Fatal("nil state accepted")
	}
}

func TestContextCancelReturnsInterrupted(t *testing.T) {
	m := resumeModel(8, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Solve(m, Options{Ctx: ctx})
	if err != nil {
		t.Fatalf("cancelled solve errored: %v", err)
	}
	if res.Status != StatusInterrupted {
		t.Fatalf("status = %v, want interrupted", res.Status)
	}
	if res.Status.String() != "interrupted" {
		t.Fatalf("status string = %q", res.Status.String())
	}
}

func TestWorkerPanicBecomesTypedError(t *testing.T) {
	m := resumeModel(8, 3)
	plan, _ := faultinject.Parse("worker-panic:2", 0)
	res, err := Solve(m, Options{Workers: 4, Batch: 4, Faults: plan})
	if err == nil {
		t.Fatal("injected panic produced no error")
	}
	var wp *WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("error is not a WorkerPanicError: %v", err)
	}
	if wp.Wave != 2 || len(wp.Stack) == 0 {
		t.Fatalf("panic metadata lost: wave=%d stack=%d bytes", wp.Wave, len(wp.Stack))
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected panic does not unwrap to ErrInjected: %v", err)
	}
	if res == nil || res.Status != StatusInterrupted {
		t.Fatalf("best-so-far result missing or mis-labelled: %+v", res)
	}
}

func TestLPSolveFaultKeepsBestSoFar(t *testing.T) {
	m := resumeModel(8, 3)
	plan, _ := faultinject.Parse("lp-solve:5", 0)
	res, err := Solve(m, Options{Batch: 2, Faults: plan})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if res == nil || res.Status != StatusInterrupted {
		t.Fatalf("best-so-far result missing or mis-labelled: %+v", res)
	}
}

// TestCheckpointWriteFaultDoesNotStopSearch: a failed snapshot write is an
// observability event, not a search failure — and the previous good file
// must survive.
func TestCheckpointWriteFaultDoesNotStopSearch(t *testing.T) {
	m := resumeModel(10, 7)
	ref := solve(t, m, Options{Batch: 4})
	path := filepath.Join(t.TempDir(), "bnb.ckpt")
	plan, _ := faultinject.Parse("ckpt-write:2", 0)
	res, err := Solve(m, Options{Batch: 4, Checkpoint: path, Faults: plan})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if res.Status != ref.Status || res.Objective != ref.Objective || res.Nodes != ref.Nodes {
		t.Fatalf("write fault changed the search: %+v vs %+v", res, ref)
	}
	// Later writes succeeded, so the file holds a loadable snapshot.
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint survived: %v", err)
	}
	if _, err := checkpoint.Load(path); err != nil {
		t.Fatalf("surviving checkpoint unreadable: %v", err)
	}
}

func TestBasisRoundTripThroughFrontier(t *testing.T) {
	m := resumeModel(10, 7)
	path := filepath.Join(t.TempDir(), "bnb.ckpt")
	plan, _ := faultinject.Parse("deadline:3", 0)
	if _, err := Solve(m, Options{Batch: 4, WarmStart: true, Checkpoint: path, Faults: plan}); err != nil {
		t.Fatalf("kill: %v", err)
	}
	snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	withBasis := 0
	for _, fn := range snap.BnB.Frontier {
		if len(fn.Basis) > 0 {
			if _, err := lp.UnmarshalBasis(fn.Basis); err != nil {
				t.Fatalf("frontier basis does not unmarshal: %v", err)
			}
			withBasis++
		}
	}
	if withBasis == 0 {
		t.Fatal("warm-started frontier carries no bases")
	}
}
