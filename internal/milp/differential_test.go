package milp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

// Engine differential: branch-and-bound explores a tree whose shape is
// dictated entirely by node relaxation answers. The lp engines are built to
// be observationally identical, so swapping Options.Engine must leave the
// WHOLE search invariant — same incumbent, same bound, and the same node /
// LP-solve / pivot counters — at any worker count. These tests pin that
// contract over representative models and seeded random instances.

// milpFixtures returns fresh builders for the differential corpus: binaries
// with knapsack/cover rows, complementarity disjunctions, indicators, and an
// infeasible instance, covering every branching rule the solver has.
func milpFixtures() map[string]func() *Model {
	return map[string]func() *Model{
		"knapsack": func() *Model {
			p := lp.NewProblem("knapsack", lp.Maximize)
			m := NewModel(p)
			a := m.AddBinary("a")
			b := m.AddBinary("b")
			c := m.AddBinary("c")
			p.SetObj(a, 10)
			p.SetObj(b, 13)
			p.SetObj(c, 7)
			p.AddConstraint("w", lp.NewExpr().Add(a, 3).Add(b, 4).Add(c, 2), lp.LE, 6)
			return m
		},
		"cover-min": func() *Model {
			p := lp.NewProblem("cover", lp.Minimize)
			m := NewModel(p)
			a := m.AddBinary("a")
			b := m.AddBinary("b")
			c := m.AddBinary("c")
			p.SetObj(a, 4)
			p.SetObj(b, 3)
			p.SetObj(c, 5)
			p.AddConstraint("c1", lp.NewExpr().Add(a, 1).Add(b, 1), lp.GE, 1)
			p.AddConstraint("c2", lp.NewExpr().Add(b, 1).Add(c, 1), lp.GE, 1)
			return m
		},
		"compl-chain": func() *Model {
			p := lp.NewProblem("chain", lp.Maximize)
			m := NewModel(p)
			u := p.AddVar("u", 0, 1)
			v := p.AddVar("v", 0, 1)
			w := p.AddVar("w", 0, 1)
			p.SetObj(u, 3)
			p.SetObj(v, 2)
			p.SetObj(w, 5)
			m.AddComplementarity(u, v, "uv")
			m.AddComplementarity(v, w, "vw")
			return m
		},
		"indicator": func() *Model {
			p := lp.NewProblem("indicator", lp.Maximize)
			m := NewModel(p)
			x := p.AddVar("x", 0, 10)
			y := m.AddBinary("y")
			p.SetObj(x, 1)
			p.SetObj(y, 3)
			// y = 1 implies x <= 2: take the bonus on y or the larger x.
			m.AddIndicatorLE("x-small-if-y", y, lp.NewExpr().Add(x, 1), 2, 100)
			p.AddConstraint("cap", lp.NewExpr().Add(x, 1), lp.LE, 8)
			return m
		},
		"infeasible": func() *Model {
			p := lp.NewProblem("infeasible", lp.Maximize)
			m := NewModel(p)
			a := m.AddBinary("a")
			b := m.AddBinary("b")
			p.SetObj(a, 1)
			p.AddConstraint("lo", lp.NewExpr().Add(a, 1).Add(b, 1), lp.GE, 2)
			p.AddConstraint("hi", lp.NewExpr().Add(a, 1).Add(b, 1), lp.LE, 1)
			return m
		},
	}
}

// assertRunsIdentical requires two B&B runs to be indistinguishable:
// status, incumbent, bound, explored tree size, and LP work, down to the
// pivot count.
func assertRunsIdentical(t *testing.T, name string, ref, got *Result) {
	t.Helper()
	if got.Status != ref.Status {
		t.Fatalf("%s: status %v vs %v", name, got.Status, ref.Status)
	}
	if math.Abs(got.Objective-ref.Objective) > 1e-9*(1+math.Abs(ref.Objective)) {
		t.Fatalf("%s: objective %.15g vs %.15g", name, got.Objective, ref.Objective)
	}
	if math.Abs(got.Bound-ref.Bound) > 1e-9*(1+math.Abs(ref.Bound)) {
		t.Fatalf("%s: bound %.15g vs %.15g", name, got.Bound, ref.Bound)
	}
	if got.Nodes != ref.Nodes {
		t.Fatalf("%s: nodes %d vs %d", name, got.Nodes, ref.Nodes)
	}
	if got.LPSolves != ref.LPSolves {
		t.Fatalf("%s: lp solves %d vs %d", name, got.LPSolves, ref.LPSolves)
	}
	if got.LPIters != ref.LPIters {
		t.Fatalf("%s: lp pivots %d vs %d", name, got.LPIters, ref.LPIters)
	}
	for j := range ref.X {
		if math.Abs(got.X[j]-ref.X[j]) > 1e-9*(1+math.Abs(ref.X[j])) {
			t.Fatalf("%s: X[%d] = %.15g vs %.15g", name, j, got.X[j], ref.X[j])
		}
	}
}

// TestEngineDifferentialFixtures: every fixture, both engines, workers 1
// and 4, warm-start off and on — all eight sparse runs must replay the
// corresponding dense run exactly.
func TestEngineDifferentialFixtures(t *testing.T) {
	for name, build := range milpFixtures() {
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				for _, warm := range []bool{false, true} {
					base := Options{Workers: workers, WarmStart: warm}
					denseOpts := base
					denseOpts.Engine = lp.EngineDense
					sparseOpts := base
					sparseOpts.Engine = lp.EngineSparse
					dense, err := Solve(build(), denseOpts)
					if err != nil {
						t.Fatalf("dense workers=%d warm=%t: %v", workers, warm, err)
					}
					sparse, err := Solve(build(), sparseOpts)
					if err != nil {
						t.Fatalf("sparse workers=%d warm=%t: %v", workers, warm, err)
					}
					assertRunsIdentical(t, name, dense, sparse)
				}
			}
		})
	}
}

// TestEngineDifferentialRandom sweeps the shared seeded instance generator
// (the same one the fuzz harness uses) through both engines at 1 and 4
// workers.
func TestEngineDifferentialRandom(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		m := randomModel(rand.New(rand.NewSource(seed)))
		for _, workers := range []int{1, 4} {
			dense, err := Solve(m, Options{Workers: workers, Engine: lp.EngineDense})
			if err != nil {
				t.Fatalf("seed %d dense: %v", seed, err)
			}
			sparse, err := Solve(m, Options{Workers: workers, Engine: lp.EngineSparse})
			if err != nil {
				t.Fatalf("seed %d sparse: %v", seed, err)
			}
			assertRunsIdentical(t, "random", dense, sparse)
		}
	}
}
