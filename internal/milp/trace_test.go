package milp

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/lp"
	"repro/internal/obs"
)

// knapsackModel builds a small maximize model whose search explores several
// nodes and improves the incumbent more than once.
func knapsackModel() (*lp.Problem, *Model) {
	p := lp.NewProblem("trace-inv", lp.Maximize)
	m := NewModel(p)
	e := lp.NewExpr()
	for i := 0; i < 6; i++ {
		v := m.AddBinary("b")
		p.SetObj(v, float64(i+1))
		e = e.Add(v, 2)
	}
	p.AddConstraint("w", e, lp.LE, 7)
	return p, m
}

func TestTraceInvariants(t *testing.T) {
	_, m := knapsackModel()
	col := &obs.Collector{}
	res, err := Solve(m, Options{Tracer: obs.NewTracer(col)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	// Every TracePoint is fully populated and the sequence is consistent.
	for i, tp := range res.Trace {
		if tp.Source == "" {
			t.Fatalf("trace[%d] has no source tag", i)
		}
		if tp.Elapsed <= 0 {
			t.Fatalf("trace[%d] has zero elapsed", i)
		}
		if i == 0 {
			continue
		}
		prev := res.Trace[i-1]
		if tp.Elapsed < prev.Elapsed {
			t.Fatalf("trace[%d] elapsed %v < previous %v", i, tp.Elapsed, prev.Elapsed)
		}
		if tp.Nodes < prev.Nodes {
			t.Fatalf("trace[%d] nodes %d < previous %d", i, tp.Nodes, prev.Nodes)
		}
		if tp.Objective < prev.Objective-1e-9 {
			t.Fatalf("trace[%d] objective %v below previous %v (maximize)", i, tp.Objective, prev.Objective)
		}
	}
	// Event stream mirrors the result counters.
	if got := col.Count(obs.KindLPSolveStart); got != res.LPSolves {
		t.Fatalf("lp_solve_start events = %d, Result.LPSolves = %d", got, res.LPSolves)
	}
	if got := col.Count(obs.KindLPSolveEnd); got != res.LPSolves {
		t.Fatalf("lp_solve_end events = %d, Result.LPSolves = %d", got, res.LPSolves)
	}
	iters := 0
	for _, e := range col.Events() {
		if e.Kind == obs.KindLPSolveEnd {
			iters += e.Iters
		}
	}
	if iters != res.LPIters {
		t.Fatalf("sum of lp_solve_end iters = %d, Result.LPIters = %d", iters, res.LPIters)
	}
	if got := col.Count(obs.KindSolveDone); got != 1 {
		t.Fatalf("solve_done events = %d, want 1", got)
	}
	var elapsed time.Duration
	for i, e := range col.Events() {
		if e.Elapsed < elapsed {
			t.Fatalf("event %d elapsed %v < previous %v", i, e.Elapsed, elapsed)
		}
		elapsed = e.Elapsed
	}
	done := col.Events()[len(col.Events())-1]
	if done.Kind != obs.KindSolveDone || done.Status != res.Status.String() {
		t.Fatalf("last event %v status %q, want solve_done with %q",
			done.Kind, done.Status, res.Status)
	}
}

func TestSeedTracePointFullyPopulated(t *testing.T) {
	// Regression: seeds used to be appended with zero Elapsed/Nodes and no
	// provenance, so gap-versus-time plots started at a fake origin.
	p := lp.NewProblem("seed-trace", lp.Maximize)
	m := NewModel(p)
	a := m.AddBinary("a")
	p.SetObj(a, 3)
	seedX := make([]float64, p.NumVars())
	seedX[a] = 1
	res, err := Solve(m, Options{MaxNodes: 0, TimeLimit: time.Nanosecond,
		Seeds: []Seed{{Objective: 3, X: seedX}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("seed left no trace")
	}
	tp := res.Trace[0]
	if tp.Source != SourceSeed {
		t.Fatalf("seed trace source %q, want %q", tp.Source, SourceSeed)
	}
	if tp.Elapsed <= 0 {
		t.Fatal("seed trace point has zero elapsed")
	}
}

func TestTargetPathRecordsFinalBound(t *testing.T) {
	// Regression: the early Target return used to skip the final bound
	// tightening, leaving the last trace point with a stale (+Inf) bound.
	p := lp.NewProblem("target-trace", lp.Maximize)
	m := NewModel(p)
	a := m.AddBinary("a")
	p.SetObj(a, 1)
	target := 0.5
	seedX := make([]float64, p.NumVars())
	seedX[a] = 1
	res, err := Solve(m, Options{Target: &target, Seeds: []Seed{{Objective: 1, X: seedX}}})
	if err != nil {
		t.Fatal(err)
	}
	last := res.Trace[len(res.Trace)-1]
	if math.IsInf(last.Bound, 0) {
		t.Fatalf("last trace bound is infinite: %v", last.Bound)
	}
	if last.Bound != res.Bound {
		t.Fatalf("last trace bound %v != Result.Bound %v", last.Bound, res.Bound)
	}
	if last.Source != SourceFinal {
		t.Fatalf("closing trace point source %q, want %q", last.Source, SourceFinal)
	}
}

func TestTraceJSONLRoundTripThroughSolve(t *testing.T) {
	_, m := knapsackModel()
	var buf bytes.Buffer
	w := obs.NewJSONLWriter(&buf)
	col := &obs.Collector{}
	res, err := Solve(m, Options{Tracer: obs.NewTracer(w, col)})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(col.Events()) {
		t.Fatalf("JSONL has %d records, collector saw %d events", len(recs), len(col.Events()))
	}
	prev := 0.0
	incumbents := 0
	for i, r := range recs {
		if r.T < prev {
			t.Fatalf("record %d time %v < previous %v", i, r.T, prev)
		}
		prev = r.T
		if r.Kind == obs.KindIncumbent.String() {
			incumbents++
			if r.Source == "" {
				t.Fatalf("record %d incumbent has no source", i)
			}
		}
	}
	want := 0
	for _, tp := range res.Trace {
		if tp.Source != SourceFinal {
			want++
		}
	}
	if incumbents != want {
		t.Fatalf("JSONL has %d incumbent records, trace has %d non-final points", incumbents, want)
	}
}
