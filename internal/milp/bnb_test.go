package milp

import (
	"math"
	"testing"
	"time"

	"repro/internal/lp"
)

func TestSeedsInstallIncumbent(t *testing.T) {
	p := lp.NewProblem("seeded", lp.Maximize)
	m := NewModel(p)
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	p.SetObj(a, 3)
	p.SetObj(b, 2)
	p.AddConstraint("w", lp.NewExpr().Add(a, 1).Add(b, 1), lp.LE, 1)
	// Seed with the known optimum; zero node budget means the answer can
	// only come from the seed.
	seedX := make([]float64, p.NumVars())
	seedX[a] = 1
	res, err := Solve(m, Options{MaxNodes: 0, TimeLimit: time.Nanosecond,
		Seeds: []Seed{{Objective: 3, X: seedX}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == StatusNoIncumbent || math.Abs(res.Objective-3) > 1e-9 {
		t.Fatalf("seed ignored: status=%v obj=%v", res.Status, res.Objective)
	}
	if res.X[a] != 1 {
		t.Fatalf("seed X not returned")
	}
}

func TestSeedsDoNotOverrideBetterSearch(t *testing.T) {
	p := lp.NewProblem("seeded2", lp.Maximize)
	m := NewModel(p)
	a := m.AddBinary("a")
	p.SetObj(a, 5)
	weak := make([]float64, p.NumVars())
	res, err := Solve(m, Options{Seeds: []Seed{{Objective: 0, X: weak}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal || math.Abs(res.Objective-5) > 1e-9 {
		t.Fatalf("status=%v obj=%v, want optimal/5", res.Status, res.Objective)
	}
}

func TestSeedSatisfiesTargetImmediately(t *testing.T) {
	p := lp.NewProblem("seeded3", lp.Maximize)
	m := NewModel(p)
	a := m.AddBinary("a")
	p.SetObj(a, 1)
	target := 0.5
	seedX := make([]float64, p.NumVars())
	seedX[a] = 1
	res, err := Solve(m, Options{Target: &target,
		Seeds: []Seed{{Objective: 1, X: seedX}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusFeasible || res.Nodes != 0 {
		t.Fatalf("target seed should return before any node: status=%v nodes=%d",
			res.Status, res.Nodes)
	}
}

func TestTraceRecordsImprovements(t *testing.T) {
	p := lp.NewProblem("trace", lp.Maximize)
	m := NewModel(p)
	var vars []lp.VarID
	for i := 0; i < 6; i++ {
		v := m.AddBinary("b")
		p.SetObj(v, float64(i+1))
		vars = append(vars, v)
	}
	e := lp.NewExpr()
	for _, v := range vars {
		e = e.Add(v, 2)
	}
	p.AddConstraint("w", e, lp.LE, 7)
	res, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	last := res.Trace[len(res.Trace)-1]
	if math.Abs(last.Objective-res.Objective) > 1e-9 {
		t.Fatalf("trace tail %v != final objective %v", last.Objective, res.Objective)
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Objective < res.Trace[i-1].Objective {
			t.Fatal("trace not monotone")
		}
	}
}

func TestPolishInstallsIncumbents(t *testing.T) {
	// A model whose relaxation is fractional; polish rounds it to a known
	// feasible point with a strong objective, which must appear as the
	// result even with a tiny node budget.
	p := lp.NewProblem("polish", lp.Maximize)
	m := NewModel(p)
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	p.SetObj(a, 2)
	p.SetObj(b, 2)
	p.AddConstraint("w", lp.NewExpr().Add(a, 1).Add(b, 1), lp.LE, 1.5)
	calls := 0
	res, err := Solve(m, Options{
		MaxNodes: 1,
		Polish: func(x []float64) (float64, []float64, bool) {
			calls++
			sol := make([]float64, len(x))
			sol[a] = 1
			return 2, sol, true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("polish never called")
	}
	if res.Objective < 2-1e-9 {
		t.Fatalf("polished incumbent lost: %v", res.Objective)
	}
}

func TestStallWindowStopsSearch(t *testing.T) {
	// Large symmetric knapsack that cannot be closed instantly; with an
	// aggressive stall rule the search must stop well before the time cap.
	p := lp.NewProblem("stall", lp.Maximize)
	m := NewModel(p)
	var e lp.Expr
	for i := 0; i < 40; i++ {
		v := m.AddBinary("b")
		p.SetObj(v, 1) // fully symmetric: bound closure is slow
		e = e.Add(v, 2)
	}
	p.AddConstraint("w", e, lp.LE, 39)
	start := time.Now()
	res, err := Solve(m, Options{
		TimeLimit:    30 * time.Second,
		StallWindow:  50 * time.Millisecond,
		StallImprove: 0.005,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("stall rule did not fire (ran %v, status %v)", elapsed, res.Status)
	}
	if res.Status == StatusNoIncumbent {
		t.Fatalf("no incumbent found before stall")
	}
}

func TestBigMReplacementSolvesSame(t *testing.T) {
	build := func() (*Model, lp.VarID, lp.VarID) {
		p := lp.NewProblem("bigm", lp.Maximize)
		m := NewModel(p)
		u := p.AddVar("u", 0, 4)
		v := p.AddVar("v", 0, 6)
		p.SetObj(u, 2)
		p.SetObj(v, 1)
		m.AddComplementarity(u, v, "uv")
		return m, u, v
	}
	sos, _, _ := build()
	resSOS, err := Solve(sos, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bigm, _, _ := build()
	bigm.ReplacePairsWithBigM(10)
	if bigm.NumComplementarities() != 0 {
		t.Fatal("pairs not cleared")
	}
	resM, err := Solve(bigm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resSOS.Objective-resM.Objective) > 1e-6 {
		t.Fatalf("SOS %v != bigM %v", resSOS.Objective, resM.Objective)
	}
}

func TestRelGapTolStopsEarly(t *testing.T) {
	p := lp.NewProblem("relgap", lp.Maximize)
	m := NewModel(p)
	var e lp.Expr
	for i := 0; i < 14; i++ {
		v := m.AddBinary("b")
		p.SetObj(v, 1+0.01*float64(i))
		e = e.Add(v, 3)
	}
	p.AddConstraint("w", e, lp.LE, 20)
	tight, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Solve(m, Options{RelGapTol: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Nodes > tight.Nodes {
		t.Fatalf("20%% gap tolerance explored more nodes (%d) than exact (%d)",
			loose.Nodes, tight.Nodes)
	}
	if loose.Objective < 0.75*tight.Objective {
		t.Fatalf("loose objective %v too far from %v", loose.Objective, tight.Objective)
	}
}
