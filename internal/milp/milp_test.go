package milp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/lp"
)

const eps = 1e-5

func almost(a, b float64) bool { return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b)) }

func solve(t *testing.T, m *Model, opts Options) *Result {
	t.Helper()
	res, err := Solve(m, opts)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	return res
}

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c  s.t. 3a + 4b + 2c <= 6, a,b,c binary.
	// Best: a + c (weight 5, value 17); b + c (weight 6, value 20) wins.
	p := lp.NewProblem("knapsack", lp.Maximize)
	m := NewModel(p)
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	c := m.AddBinary("c")
	p.SetObj(a, 10)
	p.SetObj(b, 13)
	p.SetObj(c, 7)
	p.AddConstraint("w", lp.NewExpr().Add(a, 3).Add(b, 4).Add(c, 2), lp.LE, 6)
	res := solve(t, m, Options{})
	if res.Status != StatusOptimal {
		t.Fatalf("status=%v", res.Status)
	}
	if !almost(res.Objective, 20) {
		t.Fatalf("obj=%v, want 20", res.Objective)
	}
	if !almost(res.X[b], 1) || !almost(res.X[c], 1) || !almost(res.X[a], 0) {
		t.Fatalf("x=%v, want b=c=1", res.X)
	}
}

func TestKnapsackMinimize(t *testing.T) {
	// Covering: min 4a + 3b s.t. a + b >= 1, binaries. Optimal b=1, cost 3.
	p := lp.NewProblem("cover", lp.Minimize)
	m := NewModel(p)
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	p.SetObj(a, 4)
	p.SetObj(b, 3)
	p.AddConstraint("cover", lp.NewExpr().Add(a, 1).Add(b, 1), lp.GE, 1)
	res := solve(t, m, Options{})
	if res.Status != StatusOptimal || !almost(res.Objective, 3) {
		t.Fatalf("status=%v obj=%v, want optimal/3", res.Status, res.Objective)
	}
}

func TestComplementarityForcesChoice(t *testing.T) {
	// max u + v with u,v <= 4 and u*v = 0: optimum 4, not 8.
	p := lp.NewProblem("compl", lp.Maximize)
	m := NewModel(p)
	u := p.AddVar("u", 0, 4)
	v := p.AddVar("v", 0, 4)
	p.SetObj(u, 1)
	p.SetObj(v, 1)
	m.AddComplementarity(u, v, "uv")
	res := solve(t, m, Options{})
	if res.Status != StatusOptimal || !almost(res.Objective, 4) {
		t.Fatalf("status=%v obj=%v, want optimal/4", res.Status, res.Objective)
	}
	if math.Min(res.X[u], res.X[v]) > eps {
		t.Fatalf("complementarity violated: u=%v v=%v", res.X[u], res.X[v])
	}
}

func TestComplementarityChainsPreferBest(t *testing.T) {
	// max 3u + 2v + 5w, pairs (u,v) and (v,w), all in [0,1].
	// Feasible patterns: v=0 (u,w free): 8; u=w=0: 2. Optimum 8.
	p := lp.NewProblem("chain", lp.Maximize)
	m := NewModel(p)
	u := p.AddVar("u", 0, 1)
	v := p.AddVar("v", 0, 1)
	w := p.AddVar("w", 0, 1)
	p.SetObj(u, 3)
	p.SetObj(v, 2)
	p.SetObj(w, 5)
	m.AddComplementarity(u, v, "uv")
	m.AddComplementarity(v, w, "vw")
	res := solve(t, m, Options{})
	if res.Status != StatusOptimal || !almost(res.Objective, 8) {
		t.Fatalf("status=%v obj=%v, want optimal/8", res.Status, res.Objective)
	}
}

func TestComplementarityKKTStyle(t *testing.T) {
	// Encode the KKT system of: max x s.t. x <= 5 (x >= 0).
	// Stationarity: 1 - lambda + mu = 0 with mu the multiplier of -x <= 0...
	// simplified: lambda = 1 forced; feasibility x <= 5; slack s = 5 - x;
	// complementarity lambda*s = 0 forces x = 5.
	p := lp.NewProblem("kkt", lp.Maximize)
	m := NewModel(p)
	x := p.AddVar("x", 0, lp.Inf)
	s := p.AddVar("s", 0, lp.Inf)
	lam := p.AddVar("lambda", 0, lp.Inf)
	// No objective: pure feasibility. Solve as max 0.
	p.AddConstraint("slack", lp.NewExpr().Add(x, 1).Add(s, 1), lp.EQ, 5)
	p.AddConstraint("stationarity", lp.NewExpr().Add(lam, 1), lp.EQ, 1)
	m.AddComplementarity(lam, s, "cs")
	res := solve(t, m, Options{})
	if res.Status != StatusOptimal {
		t.Fatalf("status=%v", res.Status)
	}
	if !almost(res.X[x], 5) {
		t.Fatalf("x=%v, want 5 (forced by complementary slackness)", res.X[x])
	}
}

func TestInfeasibleBinaries(t *testing.T) {
	p := lp.NewProblem("infeas", lp.Maximize)
	m := NewModel(p)
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	p.AddConstraint("sum", lp.NewExpr().Add(a, 1).Add(b, 1), lp.EQ, 1)
	p.AddConstraint("both", lp.NewExpr().Add(a, 1).Add(b, 1), lp.GE, 1.5)
	res := solve(t, m, Options{})
	if res.Status != StatusInfeasible {
		t.Fatalf("status=%v, want infeasible", res.Status)
	}
}

func TestIndicatorLE(t *testing.T) {
	// y=1 implies x <= 2; maximize x + 3y with x <= 10.
	// Choosing y=1 gives 2+3=5, y=0 gives 10. Optimum 10 with y=0.
	p := lp.NewProblem("ind", lp.Maximize)
	m := NewModel(p)
	x := p.AddVar("x", 0, 10)
	y := m.AddBinary("y")
	p.SetObj(x, 1)
	p.SetObj(y, 3)
	m.AddIndicatorLE("x-small-if-y", y, lp.NewExpr().Add(x, 1), 2, 100)
	res := solve(t, m, Options{})
	if res.Status != StatusOptimal || !almost(res.Objective, 10) {
		t.Fatalf("status=%v obj=%v, want optimal/10", res.Status, res.Objective)
	}
	// Flip the economics: maximize x + 9y now prefers y=1, x=2 => 11.
	p.SetObj(y, 9)
	res = solve(t, m, Options{})
	if !almost(res.Objective, 11) {
		t.Fatalf("obj=%v, want 11", res.Objective)
	}
	if !almost(res.X[y], 1) || res.X[x] > 2+eps {
		t.Fatalf("indicator not enforced: x=%v y=%v", res.X[x], res.X[y])
	}
}

func TestIndicatorGE(t *testing.T) {
	// y=1 implies x >= 8; minimize x + y*0 with incentive to set y.
	p := lp.NewProblem("indge", lp.Minimize)
	m := NewModel(p)
	x := p.AddVar("x", 0, 10)
	y := m.AddBinary("y")
	p.SetObj(x, 1)
	p.SetObj(y, -5) // reward choosing y=1
	m.AddIndicatorGE("x-big-if-y", y, lp.NewExpr().Add(x, 1), 8, 100)
	res := solve(t, m, Options{})
	if res.Status != StatusOptimal {
		t.Fatalf("status=%v", res.Status)
	}
	// y=1 costs x=8-5= net 3; y=0 costs 0. Optimum: y=0, x=0.
	if !almost(res.Objective, 0) {
		t.Fatalf("obj=%v, want 0", res.Objective)
	}
}

func TestTargetModeStopsEarly(t *testing.T) {
	p := lp.NewProblem("target", lp.Maximize)
	m := NewModel(p)
	var vars []lp.VarID
	for i := 0; i < 10; i++ {
		v := m.AddBinary("b")
		p.SetObj(v, 1)
		vars = append(vars, v)
	}
	// Each pair conflicts mildly so the relaxation is fractional.
	for i := 0; i+1 < len(vars); i += 2 {
		p.AddConstraint("pair", lp.NewExpr().Add(vars[i], 1).Add(vars[i+1], 1), lp.LE, 1)
	}
	target := 3.0
	res := solve(t, m, Options{Target: &target})
	if res.Status != StatusFeasible && res.Status != StatusOptimal {
		t.Fatalf("status=%v", res.Status)
	}
	if res.Objective < target-eps {
		t.Fatalf("obj=%v below target %v", res.Objective, target)
	}
}

func TestTargetModeMinimize(t *testing.T) {
	p := lp.NewProblem("target-min", lp.Minimize)
	m := NewModel(p)
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	p.SetObj(a, 2)
	p.SetObj(b, 5)
	p.AddConstraint("cover", lp.NewExpr().Add(a, 1).Add(b, 1), lp.GE, 1)
	target := 5.5 // any incumbent <= 5.5 qualifies
	res := solve(t, m, Options{Target: &target})
	if res.Objective > target+eps {
		t.Fatalf("obj=%v above (worse than) min target %v", res.Objective, target)
	}
}

func TestNodeAndTimeLimits(t *testing.T) {
	p := lp.NewProblem("limit", lp.Maximize)
	m := NewModel(p)
	rng := rand.New(rand.NewSource(7))
	var vars []lp.VarID
	for i := 0; i < 24; i++ {
		v := m.AddBinary("b")
		p.SetObj(v, 1+rng.Float64())
		vars = append(vars, v)
	}
	e := lp.NewExpr()
	for _, v := range vars {
		e = e.Add(v, 1+rng.Float64()*3)
	}
	p.AddConstraint("w", e, lp.LE, 20)
	res := solve(t, m, Options{MaxNodes: 5})
	if res.Nodes > 6 {
		t.Fatalf("nodes=%d exceeded limit", res.Nodes)
	}
	res2 := solve(t, m, Options{TimeLimit: time.Millisecond})
	if res2.Elapsed > 500*time.Millisecond {
		t.Fatalf("time limit ignored: %v", res2.Elapsed)
	}
}

func TestBoundIsValid(t *testing.T) {
	// Stop early; the reported bound must dominate the true optimum.
	p := lp.NewProblem("bound", lp.Maximize)
	m := NewModel(p)
	var vars []lp.VarID
	for i := 0; i < 12; i++ {
		v := m.AddBinary("b")
		p.SetObj(v, float64(1+i%3))
		vars = append(vars, v)
	}
	e := lp.NewExpr()
	for _, v := range vars {
		e = e.Add(v, 2)
	}
	p.AddConstraint("w", e, lp.LE, 7)
	full := solve(t, m, Options{})
	if full.Status != StatusOptimal {
		t.Fatalf("status=%v", full.Status)
	}
	early := solve(t, m, Options{MaxNodes: 2})
	if early.Bound < full.Objective-eps {
		t.Fatalf("early bound %v < true optimum %v", early.Bound, full.Objective)
	}
}

func TestDepthFirstFindsSameOptimum(t *testing.T) {
	p := lp.NewProblem("dfs", lp.Maximize)
	m := NewModel(p)
	a := m.AddBinary("a")
	b := m.AddBinary("b")
	c := m.AddBinary("c")
	p.SetObj(a, 5)
	p.SetObj(b, 4)
	p.SetObj(c, 3)
	p.AddConstraint("w", lp.NewExpr().Add(a, 4).Add(b, 3).Add(c, 2), lp.LE, 6)
	best := solve(t, m, Options{})
	dfs := solve(t, m, Options{DepthFirst: true})
	if !almost(best.Objective, dfs.Objective) {
		t.Fatalf("best-first %v != depth-first %v", best.Objective, dfs.Objective)
	}
}

func TestComplementarityPanicsOnPositiveLowerBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for lo > 0")
		}
	}()
	p := lp.NewProblem("bad", lp.Maximize)
	m := NewModel(p)
	u := p.AddVar("u", 1, 2)
	v := p.AddVar("v", 0, 2)
	m.AddComplementarity(u, v, "uv")
}

func TestMarkBinaryTightensBounds(t *testing.T) {
	p := lp.NewProblem("mark", lp.Maximize)
	m := NewModel(p)
	v := p.AddVar("wide", -1, 3)
	m.MarkBinary(v)
	lo, hi := p.Bounds(v)
	if lo != 0 || hi != 1 {
		t.Fatalf("bounds [%v,%v], want [0,1]", lo, hi)
	}
	if m.NumBinaries() != 1 {
		t.Fatalf("binaries=%d", m.NumBinaries())
	}
}

func TestResultGap(t *testing.T) {
	r := &Result{Objective: 3, Bound: 5}
	if !almost(r.Gap(), 2) {
		t.Fatalf("gap=%v", r.Gap())
	}
	r2 := &Result{Objective: 5, Bound: 3}
	if !almost(r2.Gap(), 2) {
		t.Fatalf("gap=%v", r2.Gap())
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{StatusOptimal, StatusFeasible, StatusInfeasible, StatusNoIncumbent, StatusUnbounded} {
		if s.String() == "" {
			t.Fatal("empty status string")
		}
	}
}

// TestQuickKnapsackMatchesBruteForce cross-checks branch and bound against
// exhaustive enumeration on random small knapsacks.
func TestQuickKnapsackMatchesBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := range values {
			values[i] = 1 + rng.Float64()*9
			weights[i] = 1 + rng.Float64()*5
		}
		capW := 2 + rng.Float64()*float64(n)

		p := lp.NewProblem("qk", lp.Maximize)
		m := NewModel(p)
		vars := make([]lp.VarID, n)
		e := lp.NewExpr()
		for i := range vars {
			vars[i] = m.AddBinary("b")
			p.SetObj(vars[i], values[i])
			e = e.Add(vars[i], weights[i])
		}
		p.AddConstraint("w", e, lp.LE, capW)
		res, err := Solve(m, Options{})
		if err != nil || res.Status != StatusOptimal {
			t.Logf("seed %d: err=%v status=%v", seed, err, res.Status)
			return false
		}

		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			w, v := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					w += weights[i]
					v += values[i]
				}
			}
			if w <= capW && v > best {
				best = v
			}
		}
		if !almost(res.Objective, best) {
			t.Logf("seed %d: bnb=%v brute=%v", seed, res.Objective, best)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickComplementarityMatchesBruteForce compares against enumerating all
// 2^k "which side is zero" patterns on random instances.
func TestQuickComplementarityMatchesBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed ^ 0xc0))
		n := 2 + rng.Intn(4) // pairs
		p := lp.NewProblem("qc", lp.Maximize)
		m := NewModel(p)
		us := make([]lp.VarID, n)
		vs := make([]lp.VarID, n)
		for i := 0; i < n; i++ {
			us[i] = p.AddVar("u", 0, 1+rng.Float64()*3)
			vs[i] = p.AddVar("v", 0, 1+rng.Float64()*3)
			p.SetObj(us[i], rng.Float64()*5)
			p.SetObj(vs[i], rng.Float64()*5)
			m.AddComplementarity(us[i], vs[i], "pair")
		}
		// A coupling constraint so the problem isn't separable.
		e := lp.NewExpr()
		for i := 0; i < n; i++ {
			e = e.Add(us[i], 1).Add(vs[i], 1)
		}
		budget := 1 + rng.Float64()*float64(n)
		p.AddConstraint("budget", e, lp.LE, budget)

		res, err := Solve(m, Options{})
		if err != nil || res.Status != StatusOptimal {
			return false
		}

		best := math.Inf(-1)
		for mask := 0; mask < 1<<n; mask++ {
			ov := map[lp.VarID][2]float64{}
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					ov[us[i]] = [2]float64{0, 0}
				} else {
					ov[vs[i]] = [2]float64{0, 0}
				}
			}
			sol, err := p.SolveWith(lp.SolveOptions{BoundOverride: ov})
			if err == nil && sol.Status == lp.StatusOptimal && sol.Objective > best {
				best = sol.Objective
			}
		}
		if !almost(res.Objective, best) {
			t.Logf("seed %d: bnb=%v brute=%v", seed, res.Objective, best)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
