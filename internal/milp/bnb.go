package milp

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/faultinject"
	"repro/internal/lp"
	"repro/internal/obs"
)

// ctxCancelled reports whether an optional context has been cancelled.
func ctxCancelled(ctx context.Context) bool { return ctx != nil && ctx.Err() != nil }

const (
	intTol   = 1e-6 // integrality tolerance for binaries
	complTol = 1e-6 // complementarity violation tolerance: min(u,v) below this is satisfied
	boundTol = 1e-7 // pruning slack
)

// Wave-level time attribution: one bnb_wave_seconds observation per solved
// wave (the relaxation-solving span only, serial or pooled — the apply step
// is excluded), plus a running wave count. Observability output only; the
// explored tree never reads these, which the gapvet:allow walltime
// annotations at the measurement sites assert.
var (
	bnbWaveSeconds = obs.Default.Histogram("bnb_wave_seconds")
	bnbWavesTotal  = obs.Default.Counter("bnb_waves_total")
)

// node is a branch-and-bound node: a set of bound overrides plus the bound
// inherited from its parent's relaxation. The id is a creation-order serial
// number used as the heap's final tie-break, which makes the pop order a
// strict total order — the anchor of the deterministic parallel mode.
type node struct {
	id        uint64
	overrides map[lp.VarID][2]float64
	bound     float64 // parent relaxation objective, in maximize-direction score
	depth     int
	// basis is the parent relaxation's terminal basis, used to warm-start
	// this node's own LP when Options.WarmStart is set. It is created on the
	// coordinator during the deterministic apply step and immutable after,
	// so sharing one snapshot between both children is race-free. A nil
	// basis (root node, unbounded parent) simply solves cold.
	basis *lp.Basis
}

type nodeHeap struct {
	nodes      []*node
	depthFirst bool
}

func (h *nodeHeap) Len() int { return len(h.nodes) }
func (h *nodeHeap) Less(i, j int) bool {
	a, b := h.nodes[i], h.nodes[j]
	if h.depthFirst && a.depth != b.depth {
		return a.depth > b.depth
	}
	// Bounds are copied verbatim from parent relaxations, so exact equality
	// is the right plateau test for the (bound, id) total order.
	//gapvet:allow floateq exact tie-break on copied bounds anchors the deterministic pop order
	if a.bound != b.bound {
		return a.bound > b.bound
	}
	// (bound, id) tie-break: with a unique minimum, heap.Pop's result is a
	// pure function of the heap's contents regardless of insertion order.
	// Newest-first, so tie plateaus (e.g. symmetric knapsacks, where every
	// node shares the root bound) are walked depth-first toward a leaf
	// instead of breadth-first across the tree.
	return a.id > b.id
}
func (h *nodeHeap) Swap(i, j int) { h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i] }
func (h *nodeHeap) Push(x any)    { h.nodes = append(h.nodes, x.(*node)) }
func (h *nodeHeap) Pop() any {
	old := h.nodes
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	h.nodes = old[:n-1]
	return it
}

// nodeResult is everything a worker computes for one wave node. The
// coordinator applies results strictly in wave order, so the explored tree
// (and every counter and trace event) is independent of which worker ran
// which node, and of how their completions interleaved.
type nodeResult struct {
	sol *lp.Solution
	err error
	// Speculative polish outcome, computed on the worker whenever the node
	// could still improve on the wave-start incumbent.
	polishTried bool
	polishObj   float64
	polishSol   []float64
	polishOK    bool
}

// Solve runs branch and bound on the model. The LP's own sense is honored:
// for Maximize the bound decreases toward the incumbent from above, for
// Minimize from below.
//
// With Options.Workers > 1 the search proceeds in waves: the coordinator
// pops up to Options.Batch nodes from the frontier, the workers solve their
// relaxations (plus speculative Polish calls) concurrently, and the
// coordinator applies the results sequentially in pop order. Everything
// that shapes the tree — pruning, incumbents, branching — happens on the
// coordinator, so a run is reproducible and Workers only changes wall-clock
// time, never the answer.
//
// With Options.Ctx set the search is cooperatively cancellable
// (StatusInterrupted with the best-so-far incumbent and a valid bound), and
// with Options.Checkpoint set the wave-boundary state is persisted
// atomically so Resume can continue a killed run to the bit-identical
// answer. On a failed node relaxation (solver error, recovered worker
// panic, or injected fault) Solve returns both the best-so-far
// StatusInterrupted result and a non-nil error.
func Solve(m *Model, opts Options) (*Result, error) { return runSearch(m, opts, nil) }

// runSearch is the engine behind Solve and Resume: a fresh search when resume
// is nil, otherwise the reconstruction of a checkpointed one.
func runSearch(m *Model, opts Options, resume *checkpoint.BnBState) (*Result, error) {
	start := time.Now() //gapvet:allow walltime anchors TimeLimit and elapsed-time reporting; never shapes the tree

	dir := 1.0
	if m.P.Sense() == lp.Minimize {
		dir = -1
	}
	if opts.AbsGapTol == 0 {
		opts.AbsGapTol = 1e-6
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	batch := resolveBatch(opts)
	// The legacy Log callback becomes one more sink on the tracer, so both
	// render the same event stream. A nil tracer with a nil Log stays nil,
	// and every Emit below is then a single branch with no allocation.
	tr := opts.Tracer
	if opts.Log != nil {
		tr = tr.With(obs.LogfSink{Logf: opts.Log})
	}

	// The fingerprint pins everything the explored tree depends on; a
	// checkpoint from a different model or batch must fail loudly instead of
	// resuming a structurally different search.
	fp := fingerprint(m, batch, opts.DepthFirst)
	if resume != nil && resume.Fingerprint != fp {
		return nil, &checkpoint.MismatchError{What: "search fingerprint", Want: resume.Fingerprint, Got: fp}
	}
	var ckpt *checkpoint.Writer
	ckptEvery := uint64(1)
	if opts.Checkpoint != "" {
		ckpt = &checkpoint.Writer{Path: opts.Checkpoint,
			FS: faultinject.WrapFS(opts.CheckpointFS, opts.Faults)}
		if opts.CheckpointEvery > 1 {
			ckptEvery = uint64(opts.CheckpointEvery)
		}
	}

	res := &Result{Status: StatusNoIncumbent, Fingerprint: fp}
	incumbent := math.Inf(-1) // in score space (dir * objective)
	var incumbentX []float64
	bestBound := math.Inf(1)

	// elapsed0 is the wall clock the checkpointed run had already consumed;
	// it offsets elapsed-time reporting and counts against TimeLimit, so a
	// killed-and-resumed run gets the same total budget as an uninterrupted
	// one.
	var elapsed0 time.Duration
	if resume != nil {
		elapsed0 = time.Duration(resume.ElapsedNanos)
	}
	elapsed := func() time.Duration {
		return elapsed0 + time.Since(start) //gapvet:allow walltime elapsed-time reporting only
	}
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit - elapsed0)
	}
	// Stall rule state (paper Section 3.3: stop when incremental progress in
	// a window is below 0.5%).
	windowStart := start
	windowIncumbent := incumbent

	h := &nodeHeap{depthFirst: opts.DepthFirst}
	var nextID uint64 = 1
	var waves uint64
	interrupted := false
	if resume == nil {
		heap.Push(h, &node{bound: math.Inf(1)}) // root: id 0
	}

	// relax is the worker-side work for one node: the LP relaxation plus a
	// speculative polish. It is a pure function of (nd, waveIncumbent) — it
	// reads only immutable state — so results are identical no matter which
	// worker runs it. Each call builds its own simplex tableau (lp.SolveWith
	// shares no scratch memory between calls).
	relax := func(nd *node, waveIncumbent float64) nodeResult {
		var r nodeResult
		r.sol, r.err = m.P.SolveWith(lp.SolveOptions{
			BoundOverride: nd.overrides,
			MaxIters:      opts.LPMaxIters,
			Deadline:      deadline, // zero when no time limit is set
			Ctx:           opts.Ctx, // cancels in-flight pivots cooperatively
			// Warm starting changes only how fast a node's relaxation is
			// solved, never its outcome (lp falls back to the cold path on
			// any doubt), so the explored tree stays bit-identical.
			CaptureBasis: opts.WarmStart,
			WarmStart:    nd.basis, // nil for the root or under a cold run
			// The engine and pricing knobs change which implementation (and
			// pivot rule) computes each relaxation, never the relaxation's
			// answer, so the explored tree stays engine-independent (same
			// contract as WarmStart).
			Engine:  opts.Engine,
			Pricing: opts.Pricing,
		})
		if r.err != nil || r.sol == nil || r.sol.Status != lp.StatusOptimal {
			return r
		}
		// Speculative polish: skip nodes whose score cannot beat even the
		// wave-start incumbent — the apply step is guaranteed to prune them,
		// so skipping is outcome-neutral.
		if opts.Polish != nil && r.sol.X != nil && dir*r.sol.Objective > waveIncumbent+boundTol {
			r.polishTried = true
			r.polishObj, r.polishSol, r.polishOK = opts.Polish(r.sol.X)
		}
		return r
	}

	// runNode wraps relax with panic recovery: a panicking worker (a Polish
	// bug, or the injected worker-panic fault) becomes a typed error in its
	// fixed result slot while the rest of the pool drains normally, and the
	// coordinator surfaces it in deterministic wave order. waveNo is the
	// 1-based index of the wave being solved.
	runNode := func(waveNo uint64, i int, nd *node, waveIncumbent float64) (r nodeResult) {
		defer func() {
			if p := recover(); p != nil {
				r = nodeResult{err: &WorkerPanicError{Wave: waveNo, Node: nd.id, Value: p, Stack: debug.Stack()}}
			}
		}()
		if i == 0 && opts.Faults.At(faultinject.OpWorkerPanic, int(waveNo)) {
			panic(&faultinject.Error{Op: faultinject.OpWorkerPanic, N: int(waveNo)})
		}
		return relax(nd, waveIncumbent)
	}

	// recordIncumbent appends a fully-populated trace point and emits the
	// matching event. obj and bound are in the problem's own sense.
	recordIncumbent := func(obj float64, source string) {
		bound := dir * bestBound
		res.Trace = append(res.Trace, TracePoint{
			Elapsed:   elapsed(),
			Objective: obj,
			Bound:     bound,
			Nodes:     res.Nodes,
			Source:    source,
		})
		tr.Emit(obs.Event{Kind: obs.KindIncumbent, Objective: obj, Bound: bound,
			Nodes: res.Nodes, Source: source})
	}

	finish := func(status Status) *Result {
		res.Elapsed = elapsed()
		res.Status = status
		if incumbentX != nil {
			res.Objective = dir * incumbent
			res.X = incumbentX
			// A break path (deadline/MaxNodes/stall) or a drained heap can
			// leave bestBound at a stale value below an incumbent raised later
			// in the final wave — polish candidates are not constrained by the
			// subtree bound of the node that produced them. The incumbent's
			// score is always a valid bound, so clamp: a negative gap is never
			// reportable (mirrors the optimality exit's clamp above).
			bestBound = math.Max(bestBound, incumbent)
		}
		if math.IsInf(bestBound, 1) && incumbentX != nil {
			res.Bound = res.Objective
		} else {
			res.Bound = dir * bestBound
		}
		// Close the trace with the terminal bound when it is tighter than the
		// bound at the last improvement — this covers the early Target return
		// (which tightens bestBound to the incumbent) and optimal closure, so
		// a gap-versus-time plot always ends at the reported gap.
		if incumbentX != nil && len(res.Trace) > 0 &&
			res.Trace[len(res.Trace)-1].Bound != res.Bound { //gapvet:allow floateq exact repetition check: skips the closing trace point only when the bound is bit-identical
			res.Trace = append(res.Trace, TracePoint{
				Elapsed:   res.Elapsed,
				Objective: res.Objective,
				Bound:     res.Bound,
				Nodes:     res.Nodes,
				Source:    SourceFinal,
			})
		}
		tr.Emit(obs.Event{Kind: obs.KindSolveDone, Objective: res.Objective,
			Bound: res.Bound, Nodes: res.Nodes, Status: status.String()})
		return res
	}

	infeasibleProven := true // becomes false the moment we stop early

	if resume != nil {
		// Reconstruct the wave-boundary state verbatim. Seeds are NOT
		// re-installed: the snapshot's incumbent already dominates every seed
		// the original run accepted, and replaying them would double-count
		// trace points.
		res.Nodes = int(resume.Nodes)
		res.LPSolves = int(resume.LPSolves)
		res.LPIters = int(resume.LPIters)
		res.WarmLPSolves = int(resume.WarmLPSolves)
		res.WarmLPFallbacks = int(resume.WarmLPFallbacks)
		res.Trace = traceIn(resume.Trace)
		if resume.HasIncumbent {
			incumbent = resume.Incumbent
			incumbentX = append([]float64(nil), resume.IncumbentX...)
		}
		bestBound = resume.BestBound
		infeasibleProven = resume.InfeasibleProven
		nextID = resume.NextID
		waves = resume.Waves
		h = frontierIn(resume.Frontier, opts.DepthFirst)
		tr.Emit(obs.Event{Kind: obs.KindResume, Objective: dir * incumbent,
			Bound: dir * bestBound, Nodes: res.Nodes, Detail: opts.Checkpoint})
	} else {
		// Install caller-provided seed solutions as starting incumbents.
		for _, sd := range opts.Seeds {
			if score := dir * sd.Objective; score > incumbent {
				incumbent = score
				incumbentX = append([]float64(nil), sd.X...)
				recordIncumbent(sd.Objective, SourceSeed)
				if opts.Target != nil && incumbent >= dir**opts.Target-boundTol {
					infeasibleProven = false
					return finish(StatusFeasible), nil
				}
			}
		}
	}
	windowIncumbent = incumbent

	// capture snapshots the wave-boundary state. Only called between waves
	// (no node in flight), so every field is a settled coordinator-side
	// value.
	capture := func() *checkpoint.Snapshot {
		st := &checkpoint.BnBState{
			Fingerprint:      fp,
			Waves:            waves,
			NextID:           nextID,
			Nodes:            int64(res.Nodes),
			LPSolves:         int64(res.LPSolves),
			LPIters:          int64(res.LPIters),
			WarmLPSolves:     int64(res.WarmLPSolves),
			WarmLPFallbacks:  int64(res.WarmLPFallbacks),
			BestBound:        bestBound,
			InfeasibleProven: infeasibleProven,
			ElapsedNanos:     elapsed().Nanoseconds(),
			Frontier:         frontierOut(h),
			Trace:            traceOut(res.Trace),
		}
		if incumbentX != nil {
			st.HasIncumbent = true
			st.Incumbent = incumbent
			st.IncumbentX = append([]float64(nil), incumbentX...)
		}
		return &checkpoint.Snapshot{BnB: st}
	}
	// writeCheckpoint persists the snapshot atomically. A failed write (disk
	// full, injected fault) is reported on the trace and otherwise ignored:
	// the previous good snapshot survives untouched, and losing a checkpoint
	// must never lose the search.
	writeCheckpoint := func() {
		if ckpt == nil || waves%ckptEvery != 0 {
			return
		}
		if err := ckpt.Save(capture()); err != nil {
			if errors.Is(err, faultinject.ErrInjected) {
				tr.Emit(obs.Event{Kind: obs.KindFaultInjected, Nodes: res.Nodes,
					Detail: err.Error()})
			}
			tr.Emit(obs.Event{Kind: obs.KindCheckpointWrite, Nodes: res.Nodes,
				Status: "error", Detail: err.Error()})
			return
		}
		tr.Emit(obs.Event{Kind: obs.KindCheckpointWrite, Nodes: res.Nodes,
			Status: "ok", Detail: opts.Checkpoint})
	}

	wave := make([]*node, 0, batch)
	resBuf := make([]nodeResult, batch)

	for h.Len() > 0 {
		// Global bound = best of incumbent and all open node bounds; the heap
		// top carries the largest open bound when using best-bound order.
		// Computed before the wave is popped, so it upper-bounds every wave
		// node too — incumbent trace points recorded mid-wave stay valid.
		if !opts.DepthFirst {
			bestBound = h.nodes[0].bound
		} else {
			bb := incumbent
			for _, nd := range h.nodes {
				if nd.bound > bb {
					bb = nd.bound
				}
			}
			bestBound = bb
		}
		if incumbentX != nil {
			gap := bestBound - incumbent
			if gap <= opts.AbsGapTol || (opts.RelGapTol > 0 && gap <= opts.RelGapTol*math.Abs(incumbent)) {
				// Every remaining open node is prunable, so the incumbent
				// itself is the tightest valid bound: never report a stale
				// heap-top bound below it (that would show a spurious gap).
				bestBound = math.Max(bestBound, incumbent)
				return finish(StatusOptimal), nil
			}
		}
		// Stopping rules, checked only at wave boundaries (no node is ever
		// in flight here). The interrupt check comes BEFORE the checkpoint
		// write: a wave cut short mid-apply pushed its unexplored nodes back,
		// and snapshotting that mixed frontier would not reproduce the
		// uninterrupted pop order. Disk always holds the last complete wave
		// boundary; resume re-does the final wave in full.
		if interrupted || ctxCancelled(opts.Ctx) {
			interrupted = true
			infeasibleProven = false
			break
		}
		writeCheckpoint()
		if opts.Faults.At(faultinject.OpDeadline, int(waves)+1) {
			tr.Emit(obs.Event{Kind: obs.KindFaultInjected, Nodes: res.Nodes,
				Detail: fmt.Sprintf("%s fault at wave %d", faultinject.OpDeadline, waves+1)})
			infeasibleProven = false
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			infeasibleProven = false
			break
		}
		if opts.MaxNodes > 0 && res.Nodes >= opts.MaxNodes {
			infeasibleProven = false
			break
		}
		//gapvet:allow walltime the paper's Section-3.3 stall rule is deliberately a wall-clock policy
		if opts.StallWindow > 0 && time.Since(windowStart) > opts.StallWindow {
			improved := incumbent - windowIncumbent
			rel := math.Abs(improved) / math.Max(1e-12, math.Abs(incumbent))
			if incumbentX != nil && rel < opts.StallImprove {
				tr.Emit(obs.Event{Kind: obs.KindStall, Objective: rel,
					Nodes: res.Nodes, Status: "stop"})
				infeasibleProven = false
				break
			}
			tr.Emit(obs.Event{Kind: obs.KindStall, Objective: rel,
				Nodes: res.Nodes, Status: "continue"})
			windowStart = time.Now() //gapvet:allow walltime stall-rule window anchor (see StallWindow above)
			windowIncumbent = incumbent
		}

		// Pop the wave: up to batch nodes surviving the bound prune against
		// the current incumbent, in strict heap order. With Batch == 1 this
		// is exactly the classic pop-prune-solve loop.
		lim := batch
		if opts.MaxNodes > 0 {
			if rem := opts.MaxNodes - res.Nodes; rem < lim {
				lim = rem
			}
		}
		wave = wave[:0]
		for len(wave) < lim && h.Len() > 0 {
			nd := heap.Pop(h).(*node)
			if nd.bound <= incumbent+boundTol {
				tr.Emit(obs.Event{Kind: obs.KindNodePruned, Nodes: res.Nodes,
					Bound: dir * nd.bound, Detail: "bound"})
				continue // pruned by bound
			}
			wave = append(wave, nd)
		}
		if len(wave) == 0 {
			continue
		}

		// Solve the wave's relaxations. Workers pull jobs dynamically; the
		// result slot is fixed by wave position, so scheduling cannot leak
		// into the outcome.
		results := resBuf[:len(wave)]
		waveNo := waves + 1
		waveStart := time.Now() //gapvet:allow walltime wave time attribution; observed into an obs histogram, never shapes the tree
		if workers == 1 || len(wave) == 1 {
			for i, nd := range wave {
				results[i] = runNode(waveNo, i, nd, incumbent)
			}
		} else {
			waveIncumbent := incumbent
			var cursor atomic.Int64
			var wg sync.WaitGroup
			nw := min(workers, len(wave))
			wg.Add(nw)
			for w := 0; w < nw; w++ {
				go func() {
					defer wg.Done()
					for {
						i := int(cursor.Add(1)) - 1
						if i >= len(wave) {
							return
						}
						// Disjoint-slot writes: the atomic cursor hands each worker a
						// unique index, results is preallocated to len(wave), and no
						// slot is written twice — safety lives in the indexing, not a lock.
						//gapvet:allow sharedstate disjoint slots; atomic cursor assigns each index to exactly one worker
						results[i] = runNode(waveNo, i, wave[i], waveIncumbent)
					}
				}()
			}
			wg.Wait()
		}
		bnbWaveSeconds.ObserveDuration(time.Since(waveStart)) //gapvet:allow walltime wave time attribution; observed into an obs histogram, never shapes the tree
		bnbWavesTotal.Inc()

		// Apply results sequentially in wave (= deterministic pop) order.
		for wi, nd := range wave {
			wr := results[wi]
			// The nth-LP-solve fault is counted here, at the apply step, so
			// the firing point is a position in the deterministic tree rather
			// than a race between workers.
			if n, fire := opts.Faults.Hit(faultinject.OpLPSolve); fire && wr.err == nil {
				wr = nodeResult{err: &faultinject.Error{Op: faultinject.OpLPSolve, N: n}}
			}
			if wr.err != nil {
				// A failed relaxation (solver error, recovered worker panic, or
				// injected fault) voids any completeness proof but not the
				// incumbent: return the best-so-far result alongside the error.
				if errors.Is(wr.err, faultinject.ErrInjected) {
					tr.Emit(obs.Event{Kind: obs.KindFaultInjected, Nodes: res.Nodes,
						Detail: wr.err.Error()})
				}
				infeasibleProven = false
				return finish(StatusInterrupted), fmt.Errorf("milp: node relaxation failed: %w", wr.err)
			}
			if wr.sol != nil && wr.sol.Status == lp.StatusInterrupted {
				// Cancelled mid-pivot: the node was never evaluated, so push it
				// back unexplored (before any counting) — the frontier and the
				// reported bound stay exactly valid — and let the wave-boundary
				// check stop the loop.
				heap.Push(h, nd)
				interrupted = true
				continue
			}
			// Intra-wave re-check: an earlier node of this wave may have
			// raised the incumbent past this node's bound. Never fires when
			// Batch == 1 (the pop-time prune used the same incumbent).
			latePruned := nd.bound <= incumbent+boundTol

			res.LPSolves++
			tr.Emit(obs.Event{Kind: obs.KindLPSolveStart, Nodes: res.Nodes})
			sol := wr.sol
			if sol != nil {
				res.LPIters += sol.Iterations
				mode := ""
				switch {
				case sol.Warm:
					res.WarmLPSolves++
					mode = "warm"
				case sol.WarmFallback:
					res.WarmLPFallbacks++
					mode = "warm-fallback"
					tr.Emit(obs.Event{Kind: obs.KindWarmFallback, Nodes: res.Nodes,
						Iters: sol.Iterations})
				}
				tr.Emit(obs.Event{Kind: obs.KindLPSolveEnd, Nodes: res.Nodes,
					Iters: sol.Iterations, Degenerate: sol.DegeneratePivots,
					Status: sol.Status.String(), Detail: mode})
			}
			if latePruned {
				tr.Emit(obs.Event{Kind: obs.KindNodePruned, Nodes: res.Nodes,
					Bound: dir * nd.bound, Detail: "bound"})
				continue
			}
			res.Nodes++
			tr.Emit(obs.Event{Kind: obs.KindNodeExplored, Nodes: res.Nodes,
				Bound: dir * bestBound})
			switch sol.Status {
			case lp.StatusInfeasible:
				tr.Emit(obs.Event{Kind: obs.KindNodePruned, Nodes: res.Nodes,
					Detail: "infeasible"})
				continue
			case lp.StatusUnbounded:
				// Unbounded relaxations are common here: KKT dual variables have
				// unbounded rays until complementarity pins them. Branch with an
				// infinite bound; only a fully resolved unbounded leaf proves the
				// mixed problem itself unbounded (handled below).
				sol = nil
			case lp.StatusIterLimit:
				// Keep the node's inherited bound and skip — we cannot evaluate
				// it, and dropping it silently would break infeasibility proofs.
				infeasibleProven = false
				continue
			case lp.StatusDeadline:
				// Unlike an iteration-capped node, a deadline abort means the
				// whole search is out of wall clock, not that this one node was
				// too hard: skip it (unevaluated nodes void optimality and
				// infeasibility proofs) and let the wave-boundary deadline
				// check stop the loop.
				infeasibleProven = false
				continue
			}

			// The Solution contract guarantees X non-nil on StatusOptimal, and
			// an unbounded sol was nil-ed above; this guard is purely defensive
			// so a contract violation skips the node instead of panicking in
			// polish or branching.
			if sol != nil && sol.X == nil {
				infeasibleProven = false
				continue
			}

			var score float64
			var x []float64
			if sol == nil {
				score = math.Inf(1)
			} else {
				score = dir * sol.Objective
				x = sol.X
			}
			if score <= incumbent+boundTol {
				tr.Emit(obs.Event{Kind: obs.KindNodePruned, Nodes: res.Nodes,
					Bound: dir * score, Detail: "bound"})
				continue
			}

			// Primal heuristic: let the caller turn this relaxation point into a
			// genuine feasible solution (e.g. by evaluating the true gap of the
			// relaxation's demand vector with the direct solvers). The worker
			// already ran it speculatively whenever this point is reachable (the
			// score beats the wave-start incumbent, which is never above the
			// current one); the fallback covers the contract defensively.
			if opts.Polish != nil && x != nil {
				if !wr.polishTried {
					wr.polishObj, wr.polishSol, wr.polishOK = opts.Polish(x)
				}
				if wr.polishOK {
					pObj, pSol := wr.polishObj, wr.polishSol
					if pScore := dir * pObj; pScore > incumbent {
						incumbent = pScore
						incumbentX = append([]float64(nil), pSol...)
						tr.Emit(obs.Event{Kind: obs.KindPolishAccept,
							Objective: pObj, Nodes: res.Nodes})
						recordIncumbent(pObj, SourcePolish)
						if opts.Target != nil && incumbent >= dir**opts.Target-boundTol {
							infeasibleProven = false
							bestBound = math.Max(bestBound, incumbent)
							return finish(StatusFeasible), nil
						}
						if score <= incumbent+boundTol {
							continue
						}
					} else {
						tr.Emit(obs.Event{Kind: obs.KindPolishReject,
							Objective: pObj, Nodes: res.Nodes})
					}
				} else {
					tr.Emit(obs.Event{Kind: obs.KindPolishReject, Nodes: res.Nodes})
				}
			}

			branchVar, branchPair := pickBranch(m, x, nd.overrides)
			if branchVar == -1 && branchPair == -1 && x == nil {
				// An unbounded node with every side constraint resolved means
				// the mixed problem itself is unbounded.
				return finish(StatusUnbounded), nil
			}
			if branchVar == -1 && branchPair == -1 && x != nil {
				// Integral and complementary: new incumbent.
				if score > incumbent {
					incumbent = score
					incumbentX = append([]float64(nil), x...)
					recordIncumbent(dir*incumbent, SourceLeaf)
					// Compare in score space so "at least as good" respects sense.
					if opts.Target != nil && incumbent >= dir**opts.Target-boundTol {
						infeasibleProven = false
						bestBound = math.Max(bestBound, incumbent)
						return finish(StatusFeasible), nil
					}
				}
				continue
			}

			// Branch. Children take creation-order ids on the coordinator, so
			// the heap's tie-break order is reproducible run to run. Both
			// children inherit this node's terminal basis (nil when the
			// relaxation was unbounded or warm starting is off): the child LP
			// differs from this node's only in the branched bounds, which is
			// what makes the dual-simplex repair cheap.
			var childBasis *lp.Basis
			if sol != nil {
				childBasis = sol.Basis
			}
			mk := func(v lp.VarID, lo, hi float64) *node {
				ov := make(map[lp.VarID][2]float64, len(nd.overrides)+1)
				for k, b := range nd.overrides {
					ov[k] = b
				}
				ov[v] = [2]float64{lo, hi}
				id := nextID
				nextID++
				return &node{id: id, overrides: ov, bound: score, depth: nd.depth + 1, basis: childBasis}
			}
			if branchVar != -1 {
				tr.Emit(obs.Event{Kind: obs.KindNodeBranched, Nodes: res.Nodes,
					Detail: m.P.VarName(branchVar)})
				heap.Push(h, mk(branchVar, 0, 0))
				heap.Push(h, mk(branchVar, 1, 1))
			} else {
				pr := m.pairs[branchPair]
				tr.Emit(obs.Event{Kind: obs.KindNodeBranched, Nodes: res.Nodes,
					Detail: pr.Name})
				heap.Push(h, mk(pr.U, 0, 0))
				heap.Push(h, mk(pr.V, 0, 0))
			}
		}
		waves++
	}

	if incumbentX == nil {
		if interrupted {
			return finish(StatusInterrupted), nil
		}
		if infeasibleProven && h.Len() == 0 {
			return finish(StatusInfeasible), nil
		}
		return finish(StatusNoIncumbent), nil
	}
	if h.Len() == 0 && infeasibleProven {
		bestBound = incumbent
		return finish(StatusOptimal), nil
	}
	if interrupted {
		return finish(StatusInterrupted), nil
	}
	return finish(StatusFeasible), nil
}

// pickBranch returns the most violated binary (by fractionality) or
// complementarity pair (by min(u,v)); (-1,-1) when the point is feasible
// for the full model. A nil x (unbounded node) branches on the first
// entity not already fixed by the node's overrides, so progress is
// guaranteed even without a relaxation point.
func pickBranch(m *Model, x []float64, overrides map[lp.VarID][2]float64) (lp.VarID, int) {
	if x == nil {
		fixed := func(v lp.VarID) bool {
			b, ok := overrides[v]
			return ok && b[0] == b[1] //gapvet:allow floateq branching stores identical endpoints when fixing, so equality is exact
		}
		for _, v := range m.binaries {
			if !fixed(v) {
				return v, -1
			}
		}
		for i, pr := range m.pairs {
			if !fixed(pr.U) && !fixed(pr.V) {
				return -1, i
			}
		}
		return -1, -1
	}
	bestVar := lp.VarID(-1)
	bestFrac := intTol
	for _, v := range m.binaries {
		f := math.Min(x[v], 1-x[v])
		if f > bestFrac {
			bestFrac = f
			bestVar = v
		}
	}
	bestPair := -1
	bestViol := complTol
	for i, pr := range m.pairs {
		u, v := math.Max(x[pr.U], 0), math.Max(x[pr.V], 0)
		if viol := math.Min(u, v); viol > bestViol {
			bestViol = viol
			bestPair = i
		}
	}
	// Prefer whichever violation is larger; binaries win ties since they
	// tend to reshape the relaxation more. (Branching all binaries strictly
	// first was tried and measured worse: resolving the largest
	// complementarity violations moves the relaxation's demand vector — and
	// with it the polish candidates — much faster.)
	if bestVar != -1 && bestFrac >= bestViol {
		return bestVar, -1
	}
	if bestPair != -1 {
		return -1, bestPair
	}
	return bestVar, -1
}
