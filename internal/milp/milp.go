// Package milp solves mixed linear problems that combine a linear program
// with binary variables and complementarity ("SOS1 pair") constraints, via
// branch and bound over LP relaxations.
//
// It stands in for the role Gurobi plays in the paper: the KKT rewrite of
// the meta optimization (1) produces a linear program plus complementary-
// slackness products u*v = 0, which Gurobi models as SOS constraints. Here
// each product is a ComplPair and branch and bound resolves it exactly the
// way SOS1 branching does: one child fixes u = 0, the other fixes v = 0.
// No big-M constants are needed for the pairs, so the relaxation stays
// numerically clean; big-M is only used by the optional indicator helpers.
package milp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/faultinject"
	"repro/internal/lp"
	"repro/internal/obs"
)

// ComplPair is a complementarity constraint u*v = 0 between two variables
// whose lower bounds must be zero (both are nonnegative and at least one
// must vanish).
type ComplPair struct {
	U, V lp.VarID
	Name string
}

// Model is a linear problem plus integrality and complementarity side
// constraints. The embedded *lp.Problem may be built directly; register
// binaries and pairs through the Model so the solver can see them.
type Model struct {
	P        *lp.Problem
	binaries []lp.VarID
	pairs    []ComplPair
}

// NewModel wraps an LP under construction.
func NewModel(p *lp.Problem) *Model { return &Model{P: p} }

// AddBinary adds a fresh {0,1} variable and registers it as binary.
func (m *Model) AddBinary(name string) lp.VarID {
	v := m.P.AddVar(name, 0, 1)
	m.binaries = append(m.binaries, v)
	return v
}

// MarkBinary registers an existing variable as binary. Its bounds must be
// within [0,1]; they are tightened to [0,1] if wider.
func (m *Model) MarkBinary(v lp.VarID) {
	lo, hi := m.P.Bounds(v)
	if lo < 0 || hi > 1 {
		m.P.SetBounds(v, max(lo, 0), min(hi, 1))
	}
	m.binaries = append(m.binaries, v)
}

// AddComplementarity requires u*v = 0. Both variables must have lower bound
// zero (so that "fix to zero" is a valid branch); it panics otherwise.
func (m *Model) AddComplementarity(u, v lp.VarID, name string) {
	for _, x := range []lp.VarID{u, v} {
		if lo, _ := m.P.Bounds(x); lo != 0 {
			panic(fmt.Sprintf("milp: complementarity %q: variable %q has lower bound %g, want 0",
				name, m.P.VarName(x), lo))
		}
	}
	m.pairs = append(m.pairs, ComplPair{U: u, V: v, Name: name})
}

// NumBinaries reports how many binary variables are registered.
func (m *Model) NumBinaries() int { return len(m.binaries) }

// NumComplementarities reports how many complementarity pairs are
// registered. The paper's Figure 6 calls these "SOS constraints".
func (m *Model) NumComplementarities() int { return len(m.pairs) }

// Pairs returns the registered complementarity pairs.
func (m *Model) Pairs() []ComplPair { return m.pairs }

// Binaries returns the registered binary variables.
func (m *Model) Binaries() []lp.VarID { return m.binaries }

// ReplacePairsWithBigM rewrites every complementarity pair u*v = 0 into
// big-M indicator rows with a fresh binary y: u <= M*y and v <= M*(1-y).
// This is the classical alternative to SOS1 branching; it is only valid
// when M genuinely bounds u and v from above, which for KKT duals requires
// a bound on the optimal multipliers. Provided as an ablation knob — the
// paper's SOS route needs no such constants.
func (m *Model) ReplacePairsWithBigM(bigM float64) {
	pairs := m.pairs
	m.pairs = nil
	for i, pr := range pairs {
		y := m.AddBinary(fmt.Sprintf("bigm%d.%s", i, pr.Name))
		// u <= M*y  <=>  u - M*y <= 0.
		m.P.AddConstraint(fmt.Sprintf("bigm%d.u", i),
			lp.NewExpr().Add(pr.U, 1).Add(y, -bigM), lp.LE, 0)
		// v <= M*(1-y)  <=>  v + M*y <= M.
		m.P.AddConstraint(fmt.Sprintf("bigm%d.v", i),
			lp.NewExpr().Add(pr.V, 1).Add(y, bigM), lp.LE, bigM)
	}
}

// AddIndicatorLE adds "bin = 1 implies expr <= rhs" using a big-M row:
// expr <= rhs + M*(1 - bin).
func (m *Model) AddIndicatorLE(name string, bin lp.VarID, expr lp.Expr, rhs, bigM float64) lp.ConID {
	e := lp.NewExpr().AddExpr(expr, 1).Add(bin, bigM)
	return m.P.AddConstraint(name, e, lp.LE, rhs+bigM)
}

// AddIndicatorGE adds "bin = 1 implies expr >= rhs" using a big-M row:
// expr >= rhs - M*(1 - bin).
func (m *Model) AddIndicatorGE(name string, bin lp.VarID, expr lp.Expr, rhs, bigM float64) lp.ConID {
	e := lp.NewExpr().AddExpr(expr, 1).Add(bin, -bigM)
	return m.P.AddConstraint(name, e, lp.GE, rhs-bigM)
}

// Status reports the outcome of a branch-and-bound run.
type Status int

const (
	// StatusOptimal means the incumbent was proved optimal (within gap
	// tolerances).
	StatusOptimal Status = iota
	// StatusFeasible means the search stopped early (time, nodes, stall or
	// target) holding a feasible incumbent; Result.Bound bounds how far it
	// can be from optimal — the primal-dual gap of Section 3.3.
	StatusFeasible
	// StatusInfeasible means no feasible assignment exists.
	StatusInfeasible
	// StatusNoIncumbent means the search stopped early without finding any
	// feasible assignment.
	StatusNoIncumbent
	// StatusUnbounded means the root relaxation is unbounded.
	StatusUnbounded
	// StatusInterrupted means Options.Ctx was cancelled (operator signal,
	// parent shutdown) before the search finished. The incumbent, bound and
	// counters are the valid best-so-far state — exactly what a checkpoint
	// written at the last wave boundary holds — so an interrupted run still
	// reports a genuine gap certificate.
	StatusInterrupted
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusNoIncumbent:
		return "no-incumbent"
	case StatusUnbounded:
		return "unbounded"
	case StatusInterrupted:
		return "interrupted"
	default:
		return "unknown"
	}
}

// Options tunes the branch-and-bound search. The zero value runs to proven
// optimality with defaults.
type Options struct {
	// TimeLimit caps wall-clock time; 0 means unlimited.
	TimeLimit time.Duration
	// MaxNodes caps explored nodes; 0 means unlimited.
	MaxNodes int
	// AbsGapTol stops when bound - incumbent <= AbsGapTol (default 1e-6).
	AbsGapTol float64
	// RelGapTol stops when the gap relative to the incumbent is below this.
	RelGapTol float64
	// StallWindow / StallImprove implement the paper's progress rule: stop
	// when a full window elapses with relative incumbent improvement below
	// StallImprove (paper: 0.5%). Zero window disables the rule.
	StallWindow  time.Duration
	StallImprove float64
	// Target, if non-nil, stops at the first incumbent at least as good as
	// *Target (in the problem's sense) — the paper's Z3-style query "any
	// input with gap >= g".
	Target *float64
	// DepthFirst switches node selection from best-bound to depth-first
	// (an ablation knob; best-bound is the default).
	DepthFirst bool
	// LPMaxIters overrides the per-node LP iteration cap.
	LPMaxIters int
	// Workers sets how many goroutines solve node relaxations (and run the
	// Polish heuristic) concurrently. 0 or 1 selects the sequential search.
	// Parallelism is wave-based and deterministic: the set of explored nodes
	// is a pure function of Batch, never of Workers, so Workers=1 and
	// Workers=N with the same Batch explore the identical tree and return
	// the identical incumbent and bound. See DESIGN.md, "Deterministic
	// work-sharing".
	Workers int
	// Batch is the wave size: how many nodes are popped from the frontier
	// and relaxed before any of their results are applied. 0 selects a
	// default of 1 when Workers <= 1 (exactly the classic serial loop) and
	// 2*Workers otherwise (amortizing stragglers). Larger batches increase
	// parallel occupancy but act on staler incumbents, so they may explore
	// nodes a smaller batch would have pruned.
	Batch int
	// WarmStart makes every non-root node warm-start its LP relaxation from
	// its parent's terminal basis (dual-simplex repair of the one or two
	// branched bounds) instead of solving cold from scratch. The lp package
	// falls back to the cold path whenever a snapshot is unusable, so the
	// explored tree, incumbent, bound, and node counters are bit-identical
	// with the flag on or off, for any Workers/Batch setting — only the
	// pivot counts (Result.LPIters, lp_iterations_total) change. See
	// DESIGN.md, "Warm-started re-solves".
	WarmStart bool
	// Engine selects the lp simplex implementation for every node
	// relaxation (lp.EngineDense, lp.EngineSparse; the zero value
	// lp.EngineAuto resolves to the process default). Like Workers and
	// WarmStart this changes only how each relaxation is computed, never
	// its answer — both engines report the same optimal vertex — so the
	// explored tree and all node counters are identical across engines and
	// the knob is deliberately excluded from the checkpoint fingerprint.
	// (lp's Presolve knob is intentionally NOT exposed here: a presolved
	// relaxation may report a different vertex of a degenerate optimal
	// face, which would steer branching and break that contract.)
	Engine lp.Engine
	// Pricing selects the sparse engine's entering-column rule for every
	// node relaxation (the dense engine ignores it; see lp.Pricing). Like
	// Engine it changes how relaxations are computed, never their answers,
	// so it is excluded from the checkpoint fingerprint. PricingAuto and
	// PricingDantzig reproduce the dense pivot sequence exactly; Devex may
	// change Result.LPIters (fewer, better pivots on large degenerate LPs)
	// but not the explored tree.
	Pricing lp.Pricing
	// Seeds are known-feasible solutions installed as incumbents before the
	// search starts (same contract as Polish: the objective must be
	// genuinely achievable and the vector is treated opaquely). They
	// guarantee the search returns something useful even when node LPs
	// exceed the time budget.
	Seeds []Seed
	// Polish, if non-nil, is a primal heuristic: it receives each node's
	// relaxation point and may return a feasible objective value (in the
	// problem's sense) plus a solution vector. The value must be achievable
	// — it is installed as an incumbent and used for pruning. The vector is
	// treated opaquely (returned through Result.X); it is the caller's
	// responsibility that it encodes a real solution. This is how the gap
	// finder grounds the search: any relaxation's demand vector can be
	// evaluated exactly with the direct OPT/heuristic solvers.
	//
	// Concurrency contract: when Workers > 1 the solver calls Polish from
	// several goroutines at once, so it must be safe for concurrent use; and
	// for runs to be reproducible its return value must depend only on its
	// argument, not on call order (memoize results rather than suppressing
	// repeats — see internal/core's priceCache).
	Polish func(x []float64) (obj float64, sol []float64, ok bool)
	// Ctx, if non-nil, cancels the search cooperatively: the coordinator
	// polls it at every wave boundary (and forwards it to node LPs), and a
	// cancelled context ends the run with StatusInterrupted carrying the
	// best-so-far incumbent and a valid bound. Nodes whose relaxation was
	// cut off mid-pivot are pushed back onto the frontier unexplored, so the
	// open-node set — and any checkpoint written from it — stays complete.
	Ctx context.Context
	// Checkpoint, when non-empty, is a file path the coordinator atomically
	// rewrites with the full search state (incumbent, frontier with
	// warm-start bases, counters, wave cursor) at wave boundaries. A run
	// killed at any point can be continued with Resume and finishes with
	// the bit-identical incumbent, bound and node count the uninterrupted
	// run would have reported. Write failures are reported as
	// KindCheckpointWrite error events and do not stop the search.
	Checkpoint string
	// CheckpointEvery writes the snapshot every N completed waves
	// (default 1: every wave boundary).
	CheckpointEvery int
	// CheckpointFS overrides the filesystem used for checkpoint writes —
	// the fault-injection seam. Nil selects the OS.
	CheckpointFS checkpoint.FS
	// Faults, if non-nil, is a deterministic fault plan (see
	// internal/faultinject): injected LP failures surface as typed errors
	// alongside a StatusInterrupted best-so-far result, worker panics are
	// recovered and drained deterministically, and forced deadline expiry
	// takes the regular deadline path.
	Faults *faultinject.Plan
	// Tracer, if non-nil, receives structured events (node explored/pruned/
	// branched, LP solve start/end, incumbents, stall checks, polish
	// outcomes, solve done). A nil tracer costs nothing in the hot loop.
	Tracer *obs.Tracer
	// Log, if non-nil, receives progress lines. It is kept as a legacy
	// convenience: internally it is attached to the tracer as an
	// obs.LogfSink, so Log and Tracer render the same event stream.
	Log func(format string, args ...any)
}

// Seed is a known-feasible solution handed to the solver up front.
type Seed struct {
	Objective float64
	X         []float64
}

// Incumbent sources recorded in TracePoint.Source (aliases of the obs
// package's constants so callers need not import obs).
const (
	SourceSeed   = obs.SourceSeed
	SourcePolish = obs.SourcePolish
	SourceLeaf   = obs.SourceLeaf
	SourceFinal  = obs.SourceFinal
)

// TracePoint records an incumbent improvement — the raw series behind the
// paper's gap-versus-time plots (Figure 3). Every point carries the elapsed
// wall time and node count at which it was installed, the best proven bound
// at that moment, and the source that produced it (seed, polish, leaf, or
// the final bound tightening).
type TracePoint struct {
	Elapsed   time.Duration
	Objective float64
	Bound     float64 // best proven bound when the point was recorded (may be ±Inf early)
	Nodes     int
	Source    string // SourceSeed, SourcePolish, SourceLeaf, or SourceFinal
}

// Result is the outcome of a Solve.
type Result struct {
	Status    Status
	Objective float64 // incumbent objective, valid unless NoIncumbent/Infeasible
	Bound     float64 // best proven bound on the true optimum
	X         []float64
	Nodes     int
	LPSolves  int
	LPIters   int // total simplex pivots across all node LP solves
	// WarmLPSolves counts node relaxations completed by the warm-start path;
	// WarmLPFallbacks counts nodes where a warm start was attempted but the
	// cold solver produced the answer. Both are zero unless Options.WarmStart.
	WarmLPSolves    int
	WarmLPFallbacks int
	Elapsed         time.Duration
	// Fingerprint is the search fingerprint: an FNV-1a hash of everything
	// the explored tree depends on — model shape plus the tree-determining
	// options (resolved Batch, node order); Workers is deliberately
	// excluded. It is the same value the checkpoint layer pins snapshots
	// to, so two Results with equal fingerprints explored comparable trees
	// and their node/pivot counters may be diffed (the benchmark ledger
	// keys fixtures by it).
	Fingerprint uint64
	// Trace lists every incumbent improvement in time order, closed by a
	// SourceFinal point when the solve's terminal bound is tighter than the
	// bound at the last improvement.
	Trace []TracePoint
}

// Gap returns the absolute primal-dual gap |Bound - Objective|.
func (r *Result) Gap() float64 {
	g := r.Bound - r.Objective
	if g < 0 {
		g = -g
	}
	return g
}
