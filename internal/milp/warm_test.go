package milp

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/lp"
	"repro/internal/obs"
)

// TestWarmVsColdIdenticalTree is the warm-start determinism contract: with
// Options.WarmStart on, the explored tree — objective, bound, node count, LP
// solve count, status — is bit-identical to the cold run for every worker
// count; only pivot counts (LPIters) may differ. The sweep must also actually
// exercise the warm path, otherwise the assertion is vacuous.
func TestWarmVsColdIdenticalTree(t *testing.T) {
	warmTotal := 0
	for _, depthFirst := range []bool{false, true} {
		for seed := int64(0); seed < 30; seed++ {
			m := randomModel(rand.New(rand.NewSource(seed)))
			cold, err := Solve(m, Options{Workers: 1, Batch: 4, DepthFirst: depthFirst})
			if err != nil {
				t.Fatalf("seed %d cold: %v", seed, err)
			}
			for _, workers := range []int{1, 4} {
				warm, err := Solve(m, Options{Workers: workers, Batch: 4,
					DepthFirst: depthFirst, WarmStart: true})
				if err != nil {
					t.Fatalf("seed %d warm workers=%d: %v", seed, workers, err)
				}
				if warm.Objective != cold.Objective || warm.Bound != cold.Bound ||
					warm.Nodes != cold.Nodes || warm.LPSolves != cold.LPSolves ||
					warm.Status != cold.Status {
					t.Fatalf("seed %d depthFirst=%v workers=%d: warm tree diverged from cold:\n"+
						"obj %v vs %v, bound %v vs %v, nodes %d vs %d, lp %d vs %d (warm=%d fallback=%d)",
						seed, depthFirst, workers,
						warm.Objective, cold.Objective, warm.Bound, cold.Bound,
						warm.Nodes, cold.Nodes, warm.LPSolves, cold.LPSolves,
						warm.WarmLPSolves, warm.WarmLPFallbacks)
				}
				warmTotal += warm.WarmLPSolves
				if cold.WarmLPSolves != 0 || cold.WarmLPFallbacks != 0 {
					t.Fatalf("seed %d: cold run reports warm counters %d/%d",
						seed, cold.WarmLPSolves, cold.WarmLPFallbacks)
				}
			}
		}
	}
	if warmTotal == 0 {
		t.Fatalf("warm path never completed a node relaxation across the sweep")
	}
	t.Logf("warm path completed %d node relaxations", warmTotal)
}

// iterLimitModel builds the fixed instance behind the negative-gap regression:
// a fractional root binary whose b=1 child LP needs strictly more pivots than
// both the root and the b=0 child. It returns the model, the binary, and the
// three LP pivot counts (root, b=0 child, b=1 child).
func iterLimitModel(t *testing.T) (*Model, lp.VarID, int, int, int) {
	t.Helper()
	p := lp.NewProblem("negative-gap", lp.Maximize)
	m := NewModel(p)
	b := m.AddBinary("b")
	p.SetObj(b, 1)
	z := p.AddVar("z", 0, 1)
	p.SetObj(z, 10)
	// z + b <= 1.5 makes the root relaxation pick z=1, b=0.5: fractional.
	p.AddConstraint("frac", lp.NewExpr().Add(z, 1).Add(b, 1), lp.LE, 1.5)
	var ys []lp.VarID
	for i := 0; i < 6; i++ {
		y := p.AddVar("y", 0, 10)
		p.SetObj(y, 1)
		// y_i <= 10 b: inert when b=0, real work when b=1.
		p.AddConstraint("gate", lp.NewExpr().Add(y, 1).Add(b, -10), lp.LE, 0)
		ys = append(ys, y)
	}
	for i := 0; i+1 < len(ys); i++ {
		p.AddConstraint("pair", lp.NewExpr().Add(ys[i], 1).Add(ys[i+1], 1), lp.LE, 12)
	}
	// Cross rows y_i + y_{i+3} <= 11 are slack at the root (y = 5) and at b=0
	// (y = 0) but bind at b=1, forcing the extra pivots that make the b=1
	// child strictly the hardest LP of the three.
	for i := 0; i+3 < len(ys); i++ {
		p.AddConstraint("cross", lp.NewExpr().Add(ys[i], 1).Add(ys[i+3], 1), lp.LE, 11)
	}
	iters := func(ov map[lp.VarID][2]float64) int {
		sol, err := p.SolveWith(lp.SolveOptions{BoundOverride: ov})
		if err != nil {
			t.Fatalf("measuring pivots: %v", err)
		}
		return sol.Iterations
	}
	root := iters(nil)
	a := iters(map[lp.VarID][2]float64{b: {0, 0}})
	bb := iters(map[lp.VarID][2]float64{b: {1, 1}})
	return m, b, root, a, bb
}

// TestNegativeGapClampedOnDroppedNode is the regression for the stale-bound
// bug: when a node is dropped unevaluated (here: its LP hits the iteration
// cap) and a later node of the same wave raises the incumbent above every
// open bound via polish, the search drains the heap and used to report the
// wave-top bound — below the incumbent, a negative gap. The clamp in finish
// must report Bound >= Objective instead.
func TestNegativeGapClampedOnDroppedNode(t *testing.T) {
	m, b, rootIters, aIters, bIters := iterLimitModel(t)
	if bIters <= rootIters || bIters <= aIters {
		t.Fatalf("test premise broken: b=1 child must be the hardest LP (root %d, b=0 %d, b=1 %d)",
			rootIters, aIters, bIters)
	}
	cap := bIters - 1 // root and the b=0 child complete; the b=1 child cannot

	// Polish: reject the fractional root point, promote the b=0 child's point
	// to a (synthetic) incumbent far above every LP bound. Pure and
	// deterministic, per the Polish contract.
	polish := func(x []float64) (float64, []float64, bool) {
		if x[b] < 0.25 {
			return 1000, append([]float64(nil), x...), true
		}
		return 0, nil, false
	}
	res, err := Solve(m, Options{Workers: 1, Batch: 2, LPMaxIters: cap, Polish: polish})
	if err != nil {
		t.Fatal(err)
	}
	// The b=1 child was dropped unevaluated, so the run cannot claim
	// optimality; the polish incumbent must still be returned.
	if res.Status != StatusFeasible {
		t.Fatalf("status=%v, want feasible (a node was dropped unevaluated)", res.Status)
	}
	if res.Objective != 1000 {
		t.Fatalf("objective=%v, want the polish incumbent 1000", res.Objective)
	}
	if res.Bound < res.Objective {
		t.Fatalf("negative gap reported: bound %v < objective %v", res.Bound, res.Objective)
	}
}

// TestIterLimitNodeSkippedWithoutPanic covers the Solution nil-X contract at
// the milp call site: a relaxation that returns StatusIterLimit carries no
// point, and the node must be skipped (voiding optimality) rather than
// dereferenced by polish or branching.
func TestIterLimitNodeSkippedWithoutPanic(t *testing.T) {
	m := randomModel(rand.New(rand.NewSource(5)))
	polish := func(x []float64) (float64, []float64, bool) {
		_ = x[len(x)-1] // would panic on a nil point
		return 0, nil, false
	}
	res, err := Solve(m, Options{Workers: 1, LPMaxIters: 1, Polish: polish})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusNoIncumbent {
		t.Fatalf("status=%v, want no-incumbent when every node LP is capped", res.Status)
	}

	// With a seed the capped run must surface the seed, never claim
	// optimality, and never report a bound below it.
	seedObj := 1.5
	res, err = Solve(m, Options{Workers: 1, LPMaxIters: 1, Polish: polish,
		Seeds: []Seed{{Objective: seedObj, X: make([]float64, m.P.NumVars())}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusFeasible {
		t.Fatalf("status=%v, want feasible from seed", res.Status)
	}
	if res.Objective != seedObj {
		t.Fatalf("objective=%v, want seed %v", res.Objective, seedObj)
	}
	if res.Bound < res.Objective {
		t.Fatalf("negative gap on capped run: bound %v < objective %v", res.Bound, res.Objective)
	}
}

// TestDeadlineDistinctFromIterLimit asserts the milp layer sees — and traces —
// lp deadline aborts as "deadline", not "iteration-limit". The deadline is
// driven into the middle of a wave by a polish that outsleeps the TimeLimit,
// so the sibling node's LP starts after the clock expired.
func TestDeadlineDistinctFromIterLimit(t *testing.T) {
	m, b, _, _, _ := iterLimitModel(t)
	var col obs.Collector
	polish := func(x []float64) (float64, []float64, bool) {
		if x[b] > 0.75 {
			time.Sleep(80 * time.Millisecond) //gapvet:allow walltime test drives a deadline expiry mid-wave
		}
		return 0, nil, false
	}
	res, err := Solve(m, Options{
		Workers: 1,
		// Batch 2 pops both children into one wave: the b=1 child's polish
		// outsleeps the TimeLimit, so the b=0 sibling's LP — solved later in
		// the same wave — starts with the clock already expired.
		Batch:     2,
		TimeLimit: 40 * time.Millisecond,
		Polish:    polish,
		Tracer:    obs.NewTracer(&col),
	})
	if err != nil {
		t.Fatal(err)
	}
	deadlineSeen, iterLimitSeen := false, false
	for _, e := range col.Events() {
		if e.Kind == obs.KindLPSolveEnd {
			switch e.Status {
			case "deadline":
				deadlineSeen = true
			case "iteration-limit":
				iterLimitSeen = true
			}
		}
	}
	if !deadlineSeen {
		t.Fatalf("no lp_solve_end event carried status deadline (status=%v, nodes=%d)",
			res.Status, res.Nodes)
	}
	if iterLimitSeen {
		t.Fatalf("a deadline abort was traced as iteration-limit")
	}
	if res.Status == StatusOptimal {
		t.Fatalf("timed-out run claimed optimality")
	}
	if res.X != nil && res.Bound < res.Objective {
		t.Fatalf("negative gap after timeout: bound %v < objective %v", res.Bound, res.Objective)
	}
}
