package milp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

// randomModel generates a small random MILP/SOS instance. Everything is
// boxed and every row is "nonnegative-combination <= positive rhs", so the
// origin is always feasible and the relaxation always bounded: the solver
// must reach StatusOptimal, which lets the tests compare serial and parallel
// runs on the strongest possible footing.
func randomModel(rng *rand.Rand) *Model {
	p := lp.NewProblem("rand", lp.Maximize)
	m := NewModel(p)
	nCont := 1 + rng.Intn(3)
	nBin := rng.Intn(4)
	nPair := 1 + rng.Intn(4)

	var all []lp.VarID
	for i := 0; i < nCont; i++ {
		v := p.AddVar("x", 0, 1+rng.Float64()*9)
		p.SetObj(v, rng.Float64()*4-1)
		all = append(all, v)
	}
	for i := 0; i < nBin; i++ {
		v := m.AddBinary("b")
		p.SetObj(v, rng.Float64()*6-2)
		all = append(all, v)
	}
	for i := 0; i < nPair; i++ {
		u := p.AddVar("u", 0, 1+rng.Float64()*7)
		v := p.AddVar("v", 0, 1+rng.Float64()*7)
		p.SetObj(u, rng.Float64()*3)
		p.SetObj(v, rng.Float64()*3)
		m.AddComplementarity(u, v, "uv")
		all = append(all, u, v)
	}
	nRows := 1 + rng.Intn(4)
	for i := 0; i < nRows; i++ {
		e := lp.NewExpr()
		for _, v := range all {
			if rng.Float64() < 0.6 {
				e = e.Add(v, rng.Float64()*2)
			}
		}
		if len(e.Terms) == 0 {
			e = e.Add(all[0], 1)
		}
		p.AddConstraint("r", e, lp.LE, 1+rng.Float64()*20)
	}
	return m
}

// checkModelFeasible asserts x satisfies every row, box, integrality and
// complementarity constraint of m, and returns c'x.
func checkModelFeasible(t *testing.T, m *Model, x []float64) float64 {
	t.Helper()
	p := m.P
	if len(x) != p.NumVars() {
		t.Fatalf("solution has %d vars, want %d", len(x), p.NumVars())
	}
	for ci := 0; ci < p.NumConstraints(); ci++ {
		expr, rel, rhs := p.Constraint(lp.ConID(ci))
		v := expr.Eval(x)
		switch rel {
		case lp.LE:
			if v > rhs+1e-5 {
				t.Fatalf("row %d violated: %v > %v", ci, v, rhs)
			}
		case lp.GE:
			if v < rhs-1e-5 {
				t.Fatalf("row %d violated: %v < %v", ci, v, rhs)
			}
		case lp.EQ:
			if math.Abs(v-rhs) > 1e-5 {
				t.Fatalf("row %d violated: %v != %v", ci, v, rhs)
			}
		}
	}
	obj := 0.0
	for j := 0; j < p.NumVars(); j++ {
		lo, hi := p.Bounds(lp.VarID(j))
		if x[j] < lo-1e-6 || x[j] > hi+1e-6 {
			t.Fatalf("var %d=%v out of [%v,%v]", j, x[j], lo, hi)
		}
		obj += p.Obj(lp.VarID(j)) * x[j]
	}
	for _, b := range m.Binaries() {
		if f := math.Min(x[b], 1-x[b]); f > 1e-5 {
			t.Fatalf("binary %d fractional: %v", b, x[b])
		}
	}
	for _, pr := range m.Pairs() {
		if v := math.Min(x[pr.U], x[pr.V]); v > 1e-5 {
			t.Fatalf("pair %s violated: min(%v,%v)=%v", pr.Name, x[pr.U], x[pr.V], v)
		}
	}
	return obj
}

// TestParallelMatchesSerialRandom is the satellite property test: on random
// instances, Workers=1 and Workers=4 (each with its own default Batch) agree
// on the objective within 1e-6 and both return model-feasible points.
func TestParallelMatchesSerialRandom(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		m := randomModel(rand.New(rand.NewSource(seed)))
		serial, err := Solve(m, Options{Workers: 1})
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		par, err := Solve(m, Options{Workers: 4})
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if serial.Status != StatusOptimal || par.Status != StatusOptimal {
			t.Fatalf("seed %d: status %v vs %v, want optimal (boxed feasible model)",
				seed, serial.Status, par.Status)
		}
		if math.Abs(serial.Objective-par.Objective) > 1e-6 {
			t.Fatalf("seed %d: objectives diverged: serial %v vs parallel %v",
				seed, serial.Objective, par.Objective)
		}
		if math.Abs(serial.Bound-par.Bound) > 1e-6 {
			t.Fatalf("seed %d: bounds diverged: serial %v vs parallel %v",
				seed, serial.Bound, par.Bound)
		}
		so := checkModelFeasible(t, m, serial.X)
		po := checkModelFeasible(t, m, par.X)
		if math.Abs(so-serial.Objective) > 1e-5 || math.Abs(po-par.Objective) > 1e-5 {
			t.Fatalf("seed %d: reported objective does not match returned point", seed)
		}
	}
}

// TestParallelIdenticalTreeAtFixedBatch pins Batch and checks the strong
// determinism contract: the explored tree is a pure function of Batch, so
// every counter — not just the answer — is identical across worker counts,
// in both node orders.
func TestParallelIdenticalTreeAtFixedBatch(t *testing.T) {
	for _, depthFirst := range []bool{false, true} {
		for seed := int64(0); seed < 25; seed++ {
			m := randomModel(rand.New(rand.NewSource(seed)))
			var ref *Result
			for _, workers := range []int{1, 2, 4} {
				res, err := Solve(m, Options{Workers: workers, Batch: 4, DepthFirst: depthFirst})
				if err != nil {
					t.Fatalf("seed %d workers %d: %v", seed, workers, err)
				}
				if ref == nil {
					ref = res
					continue
				}
				if res.Objective != ref.Objective || res.Bound != ref.Bound ||
					res.Nodes != ref.Nodes || res.LPSolves != ref.LPSolves ||
					res.LPIters != ref.LPIters || res.Status != ref.Status {
					t.Fatalf("seed %d depthFirst=%v: workers=%d tree diverged from workers=1:\n"+
						"obj %v vs %v, bound %v vs %v, nodes %d vs %d, lp %d vs %d, iters %d vs %d",
						seed, depthFirst, workers,
						res.Objective, ref.Objective, res.Bound, ref.Bound,
						res.Nodes, ref.Nodes, res.LPSolves, ref.LPSolves,
						res.LPIters, ref.LPIters)
				}
			}
		}
	}
}

// TestDefaultBatchMatchesLegacySerial checks that Workers=0/1 with Batch=0
// remains the exact classic loop: the same counters as an explicit Batch=1.
func TestDefaultBatchMatchesLegacySerial(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		m := randomModel(rand.New(rand.NewSource(seed)))
		a, err := Solve(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Solve(m, Options{Workers: 1, Batch: 1})
		if err != nil {
			t.Fatal(err)
		}
		if a.Objective != b.Objective || a.Nodes != b.Nodes || a.LPSolves != b.LPSolves {
			t.Fatalf("seed %d: zero options diverged from explicit serial: %+v vs %+v", seed, a, b)
		}
	}
}

// TestParallelWithPolishAndTarget exercises the worker-side speculative
// polish path plus the early Target return under contention.
func TestParallelWithPolishAndTarget(t *testing.T) {
	m := randomModel(rand.New(rand.NewSource(11)))
	serial, err := Solve(m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A polish that rounds binaries and zeroes the larger pair side would
	// need model knowledge; instead hand back the relaxation point only when
	// it is already feasible (a pure, concurrency-safe heuristic).
	polish := func(x []float64) (float64, []float64, bool) {
		for _, b := range m.Binaries() {
			if f := math.Min(x[b], 1-x[b]); f > 1e-7 {
				return 0, nil, false
			}
		}
		obj := 0.0
		for j := range x {
			obj += m.P.Obj(lp.VarID(j)) * x[j]
		}
		for _, pr := range m.Pairs() {
			if math.Min(x[pr.U], x[pr.V]) > 1e-7 {
				return 0, nil, false
			}
		}
		return obj, append([]float64(nil), x...), true
	}
	par, err := Solve(m, Options{Workers: 4, Polish: polish})
	if err != nil {
		t.Fatal(err)
	}
	if par.Status != StatusOptimal || math.Abs(par.Objective-serial.Objective) > 1e-6 {
		t.Fatalf("polish changed the answer: %v vs %v", par.Objective, serial.Objective)
	}

	// Target: ask for anything within 60% of the known optimum; the run must
	// stop early with a feasible incumbent at least that good.
	target := 0.6 * serial.Objective
	res, err := Solve(m, Options{Workers: 4, Target: &target})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusFeasible && res.Status != StatusOptimal {
		t.Fatalf("target run status %v", res.Status)
	}
	if res.Objective < target-1e-6 {
		t.Fatalf("target missed: %v < %v", res.Objective, target)
	}
	checkModelFeasible(t, m, res.X)
}
