package milp

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

// FuzzParallelSolve feeds arbitrary bytes into the seeded instance generator
// and cross-checks the sequential solver against a 4-worker run: identical
// optimal objective (within 1e-6) and a model-feasible returned point. Run
// with `go test -fuzz=FuzzParallelSolve ./internal/milp`.
func FuzzParallelSolve(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(42), uint8(3))
	f.Add(int64(-7), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, knobs uint8) {
		// Mix the knob byte into the seed so the corpus explores generator
		// shapes beyond what int64 mutation alone reaches.
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(seed))
		b[0] ^= knobs
		mixed := int64(binary.LittleEndian.Uint64(b[:]))
		m := randomModel(rand.New(rand.NewSource(mixed)))

		serial, err := Solve(m, Options{Workers: 1})
		if err != nil {
			t.Fatalf("serial: %v", err)
		}
		par, err := Solve(m, Options{Workers: 4, DepthFirst: knobs&1 == 1})
		if err != nil {
			t.Fatalf("parallel: %v", err)
		}
		if serial.Status != StatusOptimal || par.Status != StatusOptimal {
			t.Fatalf("status %v vs %v, want optimal", serial.Status, par.Status)
		}
		if math.Abs(serial.Objective-par.Objective) > 1e-6 {
			t.Fatalf("objective diverged: %v vs %v", serial.Objective, par.Objective)
		}
		if obj := checkModelFeasible(t, m, par.X); math.Abs(obj-par.Objective) > 1e-5 {
			t.Fatalf("parallel objective %v does not match its point (%v)", par.Objective, obj)
		}
		// Warm starting must leave the explored tree bit-identical: same
		// objective, bound, node and LP-solve counts as the cold parallel run.
		warm, err := Solve(m, Options{Workers: 4, DepthFirst: knobs&1 == 1, WarmStart: true})
		if err != nil {
			t.Fatalf("warm: %v", err)
		}
		if warm.Objective != par.Objective || warm.Bound != par.Bound ||
			warm.Nodes != par.Nodes || warm.LPSolves != par.LPSolves || warm.Status != par.Status {
			t.Fatalf("warm run diverged from cold: obj %v vs %v, bound %v vs %v, nodes %d vs %d, lp %d vs %d",
				warm.Objective, par.Objective, warm.Bound, par.Bound,
				warm.Nodes, par.Nodes, warm.LPSolves, par.LPSolves)
		}
		// The sparse lp engine must leave the explored tree untouched: same
		// answer, bound, and node/LP-solve counters as the dense parallel
		// run. (Raw pivot totals are exempt — a degenerate pricing tie may
		// cost one engine an extra pivot without changing any relaxation's
		// answer; see the lp fuzz oracle.)
		sparse, err := Solve(m, Options{Workers: 4, DepthFirst: knobs&1 == 1, Engine: lp.EngineSparse})
		if err != nil {
			t.Fatalf("sparse: %v", err)
		}
		if sparse.Objective != par.Objective || sparse.Bound != par.Bound ||
			sparse.Nodes != par.Nodes || sparse.LPSolves != par.LPSolves || sparse.Status != par.Status {
			t.Fatalf("sparse engine diverged from dense: obj %v vs %v, bound %v vs %v, nodes %d vs %d, lp %d vs %d",
				sparse.Objective, par.Objective, sparse.Bound, par.Bound,
				sparse.Nodes, par.Nodes, sparse.LPSolves, par.LPSolves)
		}
	})
}
