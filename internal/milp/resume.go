package milp

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/lp"
)

// WorkerPanicError is a panic recovered inside a wave-pool worker,
// converted to a typed error so the pool drains deterministically and the
// coordinator can report it (with the best-so-far result) instead of the
// process dying. Value is the recovered panic value; when it is an error,
// Unwrap exposes it (so an injected faultinject panic still satisfies
// errors.Is(err, faultinject.ErrInjected)).
type WorkerPanicError struct {
	Wave  uint64
	Node  uint64
	Value any
	Stack []byte
}

func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("milp: worker panic at wave %d (node %d): %v", e.Wave, e.Node, e.Value)
}

func (e *WorkerPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// fingerprint hashes everything that determines the explored tree: the
// model's shape (variables, constraints, sense, binaries, pairs) and the
// tree-shaping options (resolved batch, node order). A checkpoint only
// resumes a search with the same fingerprint; notably Workers is excluded —
// PR 2's wave determinism makes the tree a pure function of Batch — so a
// run checkpointed under 4 workers may resume under 1 and still match.
func fingerprint(m *Model, batch int, depthFirst bool) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	mix := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	mix(uint64(m.P.NumVars()))
	mix(uint64(m.P.NumConstraints()))
	mix(uint64(m.P.Sense()))
	mix(uint64(len(m.binaries)))
	for _, v := range m.binaries {
		mix(uint64(v))
	}
	mix(uint64(len(m.pairs)))
	for _, pr := range m.pairs {
		mix(uint64(pr.U))
		mix(uint64(pr.V))
	}
	mix(uint64(batch))
	if depthFirst {
		mix(1)
	} else {
		mix(0)
	}
	return h.Sum64()
}

// resolveBatch computes the effective wave size for opts, exactly as
// runSearch does: an explicit Batch wins; otherwise 1 for the serial search
// and 2*Workers for the parallel one. Shared between the search itself and
// SearchFingerprint so the two can never drift.
func resolveBatch(opts Options) int {
	if opts.Batch > 0 {
		return opts.Batch
	}
	if opts.Workers > 1 {
		return 2 * opts.Workers
	}
	return 1
}

// SearchFingerprint reports the fingerprint Solve(m, opts) would stamp on
// its Result — without solving anything. Callers that key caches or result
// stores by search identity (cmd/gapserved's results store) use this to
// look up a fingerprint before paying for the solve. The hash covers the
// model shape and the tree-determining options (resolved Batch, DepthFirst);
// Workers, Engine, Pricing and WarmStart are deliberately excluded because
// they never change the explored tree or the answer.
func SearchFingerprint(m *Model, opts Options) uint64 {
	return fingerprint(m, resolveBatch(opts), opts.DepthFirst)
}

// frontierOut converts the open-node heap to its wire form, sorted by node
// id so the encoded bytes are canonical regardless of the heap's internal
// array layout. Bases marshal to their opaque lp wire form.
func frontierOut(h *nodeHeap) []checkpoint.FrontierNode {
	out := make([]checkpoint.FrontierNode, 0, len(h.nodes))
	for _, nd := range h.nodes {
		fn := checkpoint.FrontierNode{ID: nd.id, Bound: nd.bound, Depth: int32(nd.depth)}
		if len(nd.overrides) > 0 {
			fn.Overrides = make([]checkpoint.Override, 0, len(nd.overrides))
			for v, b := range nd.overrides {
				fn.Overrides = append(fn.Overrides, checkpoint.Override{Var: int32(v), Lo: b[0], Hi: b[1]})
			}
			sort.Slice(fn.Overrides, func(i, j int) bool { return fn.Overrides[i].Var < fn.Overrides[j].Var })
		}
		if nd.basis != nil {
			if blob, err := nd.basis.MarshalBinary(); err == nil {
				fn.Basis = blob
			}
		}
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// frontierIn reconstructs the open-node heap. The heap's Less is a strict
// total order over (depth, bound, id), so heap.Init over the restored node
// set reproduces the exact pop sequence of the original run — the anchor of
// resume determinism. An unusable basis blob degrades to a cold solve,
// which by the warm-start contract changes pivot counts only, never the
// tree.
func frontierIn(fr []checkpoint.FrontierNode, depthFirst bool) *nodeHeap {
	h := &nodeHeap{depthFirst: depthFirst, nodes: make([]*node, 0, len(fr))}
	for _, fn := range fr {
		nd := &node{id: fn.ID, bound: fn.Bound, depth: int(fn.Depth)}
		if len(fn.Overrides) > 0 {
			nd.overrides = make(map[lp.VarID][2]float64, len(fn.Overrides))
			for _, ov := range fn.Overrides {
				nd.overrides[lp.VarID(ov.Var)] = [2]float64{ov.Lo, ov.Hi}
			}
		}
		if len(fn.Basis) > 0 {
			if b, err := lp.UnmarshalBasis(fn.Basis); err == nil {
				nd.basis = b
			}
		}
		h.nodes = append(h.nodes, nd)
	}
	heap.Init(h)
	return h
}

func traceOut(tr []TracePoint) []checkpoint.TracePoint {
	if len(tr) == 0 {
		return nil
	}
	out := make([]checkpoint.TracePoint, len(tr))
	for i, p := range tr {
		out[i] = checkpoint.TracePoint{
			ElapsedNanos: p.Elapsed.Nanoseconds(),
			Objective:    p.Objective,
			Bound:        p.Bound,
			Nodes:        int64(p.Nodes),
			Source:       p.Source,
		}
	}
	return out
}

func traceIn(tr []checkpoint.TracePoint) []TracePoint {
	if len(tr) == 0 {
		return nil
	}
	out := make([]TracePoint, len(tr))
	for i, p := range tr {
		out[i] = TracePoint{
			Elapsed:   time.Duration(p.ElapsedNanos),
			Objective: p.Objective,
			Bound:     p.Bound,
			Nodes:     int(p.Nodes),
			Source:    p.Source,
		}
	}
	return out
}

// Resume continues a branch-and-bound search from a checkpoint written by a
// previous Solve (or Resume) of the same model under the same
// tree-determining options. The restored run explores exactly the nodes the
// uninterrupted run would have explored from that wave on, so its final
// incumbent, bound and node count are bit-identical to the run that was
// never killed. opts must carry the same Batch/DepthFirst (and model) the
// snapshot was taken under — a *checkpoint.MismatchError is returned
// otherwise; Workers may differ freely. When opts.TimeLimit is set, the
// wall clock already consumed before the snapshot counts against it.
func Resume(m *Model, st *checkpoint.BnBState, opts Options) (*Result, error) {
	if st == nil {
		return nil, fmt.Errorf("milp: Resume called with a nil state")
	}
	return runSearch(m, opts, st)
}
