package milp

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/faultinject"
	"repro/internal/lp"
)

// TestCrossEngineResume seals BnBState's portability contract: the
// fingerprint deliberately excludes the LP engine, so a checkpoint written
// under one engine must resume under the other and still replay to the
// bit-identical incumbent, bound, X and node count of the uninterrupted
// run. Quantified over every wave at which the search can die, in both
// directions, at one worker and at four.
func TestCrossEngineResume(t *testing.T) {
	m := resumeModel(10, 7)
	dirs := []struct {
		name         string
		write, other lp.Engine
	}{
		{"dense-to-sparse", lp.EngineDense, lp.EngineSparse},
		{"sparse-to-dense", lp.EngineSparse, lp.EngineDense},
	}
	for _, dir := range dirs {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", dir.name, workers), func(t *testing.T) {
				base := Options{Workers: workers, Batch: 4, WarmStart: true}
				// The reference answer is the uninterrupted run under the
				// engine the killed run writes with; the resumed run must
				// match it despite solving its relaxations elsewhere.
				refOpts := base
				refOpts.Engine = dir.write
				ref := solve(t, m, refOpts)
				if ref.Status != StatusOptimal {
					t.Fatalf("reference run not optimal: %v", ref.Status)
				}
				killed := 0
				for k := 1; ; k++ {
					path := filepath.Join(t.TempDir(), "bnb.ckpt")
					plan, err := faultinject.Parse(fmt.Sprintf("deadline:%d", k), 0)
					if err != nil {
						t.Fatalf("plan: %v", err)
					}
					opts := base
					opts.Engine = dir.write
					opts.Checkpoint = path
					opts.Faults = plan
					dead, err := Solve(m, opts)
					if err != nil {
						t.Fatalf("kill at wave %d: %v", k, err)
					}
					if dead.Status == StatusOptimal {
						if killed == 0 {
							t.Fatal("search finished before the first kill point; enlarge the model")
						}
						break
					}
					killed++
					snap, err := checkpoint.Load(path)
					if err != nil {
						t.Fatalf("load at wave %d: %v", k, err)
					}
					resumeOpts := base
					resumeOpts.Engine = dir.other
					res, err := Resume(m, snap.BnB, resumeOpts)
					if err != nil {
						t.Fatalf("resume at wave %d: %v", k, err)
					}
					if res.Status != ref.Status ||
						res.Objective != ref.Objective ||
						res.Bound != ref.Bound ||
						res.Nodes != ref.Nodes ||
						res.LPSolves != ref.LPSolves {
						t.Fatalf("cross-engine resume at wave %d diverged:\n got %v obj=%v bound=%v nodes=%d lp=%d\nwant %v obj=%v bound=%v nodes=%d lp=%d",
							k, res.Status, res.Objective, res.Bound, res.Nodes, res.LPSolves,
							ref.Status, ref.Objective, ref.Bound, ref.Nodes, ref.LPSolves)
					}
					for i, x := range ref.X {
						if res.X[i] != x {
							t.Fatalf("cross-engine resume at wave %d: X[%d] = %v, want %v", k, i, res.X[i], x)
						}
					}
				}
				if killed < 2 {
					t.Fatalf("only %d kill points exercised; enlarge the model", killed)
				}
			})
		}
	}
}

// TestSearchFingerprintMatchesSolve pins the exported fingerprint preview to
// the one Solve actually stamps, across the option axes that must (Batch,
// DepthFirst) and must not (Workers, Engine, Pricing, WarmStart) move it.
func TestSearchFingerprintMatchesSolve(t *testing.T) {
	m := resumeModel(8, 3)
	for _, opts := range []Options{
		{},
		{Batch: 4},
		{Workers: 4},
		{Batch: 4, DepthFirst: true},
	} {
		res := solve(t, m, opts)
		if got := SearchFingerprint(m, opts); got != res.Fingerprint {
			t.Fatalf("SearchFingerprint(%+v) = %#x, Solve stamped %#x", opts, got, res.Fingerprint)
		}
	}
	base := SearchFingerprint(m, Options{Batch: 4})
	for _, opts := range []Options{
		{Batch: 4, Workers: 8},
		{Batch: 4, Engine: lp.EngineSparse, Pricing: lp.PricingDevex},
		{Batch: 4, WarmStart: true},
	} {
		if got := SearchFingerprint(m, opts); got != base {
			t.Fatalf("answer-neutral options moved the fingerprint: %+v -> %#x, want %#x", opts, got, base)
		}
	}
	if SearchFingerprint(m, Options{Batch: 8}) == base {
		t.Fatal("batch change did not move the fingerprint")
	}
	if SearchFingerprint(m, Options{Batch: 4, DepthFirst: true}) == base {
		t.Fatal("depth-first change did not move the fingerprint")
	}
	// The default-batch rule: Batch 0 resolves to 1 serially and 2*Workers
	// in parallel, and the fingerprint follows the resolved value.
	if SearchFingerprint(m, Options{}) != SearchFingerprint(m, Options{Batch: 1}) {
		t.Fatal("serial default batch does not resolve to 1")
	}
	if SearchFingerprint(m, Options{Workers: 4}) != SearchFingerprint(m, Options{Batch: 8}) {
		t.Fatal("parallel default batch does not resolve to 2*Workers")
	}
}
