package experiments

import (
	"testing"
	"time"
)

// Tight budgets: these tests verify shapes and wiring, not headline
// numbers; cmd/figures runs the same code with paper-scale budgets.
func tinyCfg() Config {
	return Config{Budget: 400 * time.Millisecond, Pairs: 6, Seed: 1}
}

func TestFigure1Numbers(t *testing.T) {
	r, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if r.Opt != 250 || r.DP != 150 || r.Gap != 100 {
		t.Fatalf("got %+v, want OPT=250 DP=150 gap=100", r)
	}
}

func TestFigure2LinearAnalog(t *testing.T) {
	if err := Figure2LinearAnalog(); err != nil {
		t.Fatal(err)
	}
}

func TestFigure3ProducesAllMethods(t *testing.T) {
	for _, heur := range []string{"dp", "pop"} {
		points, err := Figure3(heur, tinyCfg())
		if err != nil {
			t.Fatalf("%s: %v", heur, err)
		}
		seen := map[string]bool{}
		for _, p := range points {
			seen[p.Method] = true
			if p.NormGap < 0 {
				t.Fatalf("%s: negative normalized gap %v", heur, p.NormGap)
			}
		}
		for _, m := range []string{"whitebox", "hillclimb", "anneal"} {
			if !seen[m] {
				t.Fatalf("%s: no points for method %s (points %v)", heur, m, points)
			}
		}
	}
	if _, err := Figure3("nope", tinyCfg()); err == nil {
		t.Fatal("expected error for unknown heuristic")
	}
}

func TestFigure4aCoversTopologiesAndThresholds(t *testing.T) {
	rows, err := Figure4a(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*5 {
		t.Fatalf("got %d rows, want 15", len(rows))
	}
	topos := map[string]bool{}
	for _, r := range rows {
		topos[r.Topology] = true
		if r.NormGap < 0 {
			t.Fatalf("negative gap at %+v", r)
		}
	}
	if len(topos) != 3 {
		t.Fatalf("topologies covered: %v", topos)
	}
}

func TestFigure4bPathLengthsIncrease(t *testing.T) {
	rows, err := Figure4b(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].AvgPathLen < rows[i-1].AvgPathLen {
			t.Fatalf("shapes not ordered by avg path length: %+v", rows)
		}
	}
}

func TestFigure5aTransfers(t *testing.T) {
	rows, err := Figure5a(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Instantiations != 1 || rows[1].Instantiations != 5 {
		t.Fatalf("rows=%+v", rows)
	}
	// With this test's tiny support and the 40%-of-capacity demand bound a
	// zero gap is legitimate; only negative values would indicate a bug.
	for _, r := range rows {
		if r.TrainGap < 0 || r.TransferGap < -1e-6 {
			t.Fatalf("negative gap: %+v", r)
		}
	}
}

func TestFigure5bCoversSweeps(t *testing.T) {
	rows, err := Figure5b(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3+4 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
}

func TestFigure6SizesAndOrdering(t *testing.T) {
	rows, err := Figure6(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	byName := map[string]Figure6Row{}
	for _, r := range rows {
		byName[r.Problem] = r
	}
	// The meta problems must dwarf the inner problems in size, and only
	// they carry SOS pairs — the core observation of Figure 6.
	for _, meta := range []string{"DP+OPT meta", "POP+OPT meta"} {
		m, ok := byName[meta]
		if !ok {
			t.Fatalf("missing row %q", meta)
		}
		if m.SOS == 0 {
			t.Fatalf("%s has no SOS pairs", meta)
		}
		if m.Vars <= byName["OPT"].Vars {
			t.Fatalf("%s vars %d not larger than OPT's %d", meta, m.Vars, byName["OPT"].Vars)
		}
		if m.Latency <= byName["OPT"].Latency {
			t.Fatalf("%s latency %v not larger than OPT's %v", meta, m.Latency, byName["OPT"].Latency)
		}
	}
	for _, inner := range []string{"OPT", "DP", "POP"} {
		if byName[inner].SOS != 0 {
			t.Fatalf("inner problem %s reports SOS pairs", inner)
		}
	}
}
