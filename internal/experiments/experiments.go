// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4). Each FigureN function returns the data series the
// corresponding plot draws; cmd/figures prints them and bench_test.go wraps
// them in benchmarks. EXPERIMENTS.md records paper-versus-measured values.
//
// Scale note: the paper drives Gurobi on full production topologies; this
// repository's pure-Go branch and bound is weaker, so the meta
// optimizations run on the same topologies with the demand support
// restricted to Config.Pairs random node pairs (DESIGN.md documents the
// substitution). Qualitative shapes — who wins, how gaps move with
// thresholds, path lengths and partition counts — are preserved.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/blackbox"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/kkt"
	"repro/internal/lp"
	"repro/internal/mcf"
	"repro/internal/milp"
	"repro/internal/obs"
	"repro/internal/topology"
)

// Config tunes every experiment. The zero value selects defaults matching
// the paper where possible: 2 paths per pair, DP threshold 5% of link
// capacity, 2 POP partitions.
type Config struct {
	// Budget is the per-search wall clock (default 5s).
	Budget time.Duration
	// Pairs restricts the demand support of meta optimizations (default 10;
	// <0 means all pairs).
	Pairs int
	// Paths per demand pair (default 2, as in the paper).
	Paths int
	// Seed drives every random choice (default 1).
	Seed int64
	// Tracer, if non-nil, receives structured events from every search the
	// experiment runs (white-box B&B and black-box baselines alike).
	Tracer *obs.Tracer
	// Workers is threaded into every search: node-relaxation parallelism in
	// the white-box branch and bound and restart parallelism in the
	// black-box baselines. 0 or 1 keeps everything sequential.
	Workers int
	// WarmStart makes every white-box search warm-start node LP relaxations
	// from the parent basis (milp.Options.WarmStart). The explored trees and
	// reported gaps are bit-identical either way; only pivot counts change.
	WarmStart bool
	// Ctx, if non-nil, is threaded into every search (white-box and
	// black-box) for cooperative cancellation: an interrupted experiment
	// returns best-so-far results instead of dying mid-solve.
	Ctx context.Context
}

func (c Config) withDefaults() Config {
	if c.Budget == 0 {
		c.Budget = 5 * time.Second
	}
	if c.Pairs == 0 {
		c.Pairs = 10
	}
	if c.Paths == 0 {
		c.Paths = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// instance builds a TE instance on g with the configured demand support.
func (c Config) instance(g *topology.Graph) (*mcf.Instance, error) {
	var set *demand.Set
	if c.Pairs < 0 {
		set = demand.ReachablePairs(g)
	} else {
		set = demand.RandomPairs(g, c.Pairs, rand.New(rand.NewSource(c.Seed)))
	}
	return mcf.NewInstance(g, set, c.Paths)
}

// searchOptions is the standard white-box budget: depth-first plunging for
// early incumbents. The paper's 0.5%-progress stall rule is configured with
// a window spanning the whole budget so the white box uses exactly as much
// wall clock as the black-box baselines it is compared against.
func (c Config) searchOptions() milp.Options {
	return milp.Options{
		TimeLimit:    c.Budget,
		DepthFirst:   true,
		StallWindow:  c.Budget,
		StallImprove: 0.005,
		Tracer:       c.Tracer,
		Workers:      c.Workers,
		WarmStart:    c.WarmStart,
		Ctx:          c.Ctx,
	}
}

// Figure1Result carries the motivating example's numbers.
type Figure1Result struct {
	Opt, DP, Gap float64
}

// Figure1 reproduces the motivating example: OPT vs DP on the 3-node
// topology with threshold 50.
func Figure1() (Figure1Result, error) {
	g := topology.Figure1()
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	set.SetVolumes([]float64{100, 100, 50})
	inst, err := mcf.NewInstance(g, set, 2)
	if err != nil {
		return Figure1Result{}, err
	}
	opt, err := mcf.SolveMaxFlow(inst)
	if err != nil {
		return Figure1Result{}, err
	}
	dp, err := mcf.SolveDemandPinning(inst, 50)
	if err != nil {
		return Figure1Result{}, err
	}
	return Figure1Result{Opt: opt.Total, DP: dp.Total, Gap: opt.Total - dp.Total}, nil
}

// Figure2LinearAnalog runs the Figure-2 rectangle example's LP analog
// through the full KKT machinery: inner min w+l subject to 2(w+l) >= P with
// P fixed at 3; certification must pin w+l at P/2 even though the meta
// objective pushes it up. It returns an error on any deviation.
func Figure2LinearAnalog() error {
	p := lp.NewProblem("fig2", lp.Maximize)
	m := milp.NewModel(p)
	P := p.AddVar("P", 3, 3)
	in := &kkt.InnerLP{Name: "rect", NumVars: 2, Obj: []float64{-1, -1}}
	in.AddRow(kkt.Row{
		Name:  "perimeter",
		Terms: []kkt.InnerTerm{{Var: 0, Coef: 2}, {Var: 1, Coef: 2}},
		Rel:   lp.GE,
		RHS:   kkt.Var(P, 1, 0),
	})
	res, err := kkt.Emit(m, in, true)
	if err != nil {
		return err
	}
	p.SetObj(res.X[0], 1)
	p.SetObj(res.X[1], 1)
	sol, err := milp.Solve(m, milp.Options{})
	if err != nil {
		return err
	}
	if sol.Status != milp.StatusOptimal {
		return fmt.Errorf("figure2: status %v", sol.Status)
	}
	if got := sol.X[res.X[0]] + sol.X[res.X[1]]; got < 1.5-1e-6 || got > 1.5+1e-6 {
		return fmt.Errorf("figure2: w+l = %v, want 1.5", got)
	}
	return nil
}

// Figure3Point is one point of a gap-versus-time curve.
type Figure3Point struct {
	Method  string
	Elapsed time.Duration
	NormGap float64 // gap / total edge capacity, the figure's y-axis
}

// Figure3 runs the white-box search and both black-box baselines for the
// given heuristic ("dp" or "pop") on B4 and returns their incumbent traces.
func Figure3(heuristic string, cfg Config) ([]Figure3Point, error) {
	cfg = cfg.withDefaults()
	g := topology.B4()
	inst, err := cfg.instance(g)
	if err != nil {
		return nil, err
	}
	totalCap := g.TotalCapacity()
	input := core.InputConstraints{MaxDemand: topology.DefaultCapacity}
	var points []Figure3Point

	// White box.
	var trace []milp.TracePoint
	switch heuristic {
	case "dp":
		pr := &core.DPGapProblem{Inst: inst, Threshold: 0.05 * topology.DefaultCapacity, Input: input}
		res, err := pr.Solve(cfg.searchOptions())
		if err != nil {
			return nil, err
		}
		trace = res.Solver.Trace
	case "pop":
		pr := &core.POPGapProblem{
			Inst: inst, Partitions: 2, Instantiations: 3,
			Rng: rand.New(rand.NewSource(cfg.Seed + 10)), Input: input,
		}
		res, err := pr.Solve(cfg.searchOptions())
		if err != nil {
			return nil, err
		}
		trace = res.Solver.Trace
	default:
		return nil, fmt.Errorf("experiments: unknown heuristic %q", heuristic)
	}
	for _, tp := range trace {
		points = append(points, Figure3Point{
			Method: "whitebox", Elapsed: tp.Elapsed, NormGap: tp.Objective / totalCap,
		})
	}

	// Black boxes over the same gap oracle.
	var gapFn blackbox.GapFunc
	if heuristic == "dp" {
		gapFn = blackbox.DPGap(inst, 0.05*topology.DefaultCapacity)
	} else {
		n := inst.Demands.Len()
		rng := rand.New(rand.NewSource(cfg.Seed + 10))
		assignments := make([][]int, 3)
		for i := range assignments {
			assignments[i] = mcf.RandomAssignment(n, 2, rng)
		}
		gapFn = blackbox.POPGap(inst, assignments, 2)
	}
	base := blackbox.Options{
		MaxDemand: topology.DefaultCapacity,
		Sigma:     0.1 * topology.DefaultCapacity, // paper: 10% of link capacity
		K:         100,
		Budget:    cfg.Budget,
		Tracer:    cfg.Tracer,
		Workers:   cfg.Workers,
		Ctx:       cfg.Ctx,
	}
	hcOpts := base
	hcOpts.Rng = rand.New(rand.NewSource(cfg.Seed + 20))
	hc, err := blackbox.HillClimb(gapFn, inst.Demands.Len(), hcOpts)
	if err != nil {
		return nil, err
	}
	for _, tp := range hc.Trace {
		points = append(points, Figure3Point{Method: "hillclimb", Elapsed: tp.Elapsed, NormGap: tp.Gap / totalCap})
	}
	saOpts := blackbox.SAOptions{Options: base, T0: 500, Gamma: 0.1, KP: 100}
	saOpts.Rng = rand.New(rand.NewSource(cfg.Seed + 30))
	sa, err := blackbox.SimulatedAnneal(gapFn, inst.Demands.Len(), saOpts)
	if err != nil {
		return nil, err
	}
	for _, tp := range sa.Trace {
		points = append(points, Figure3Point{Method: "anneal", Elapsed: tp.Elapsed, NormGap: tp.Gap / totalCap})
	}
	return points, nil
}

// Figure4aRow is the DP gap at one (topology, threshold) point.
type Figure4aRow struct {
	Topology  string
	Threshold float64 // as a fraction of link capacity
	NormGap   float64
}

// Figure4a sweeps the DP threshold on SWAN, B4 and Abilene.
func Figure4a(cfg Config) ([]Figure4aRow, error) {
	cfg = cfg.withDefaults()
	var rows []Figure4aRow
	for _, g := range []*topology.Graph{topology.SWAN(), topology.B4(), topology.Abilene()} {
		inst, err := cfg.instance(g)
		if err != nil {
			return nil, err
		}
		for _, frac := range []float64{0.025, 0.05, 0.1, 0.15, 0.2} {
			pr := &core.DPGapProblem{
				Inst:      inst,
				Threshold: frac * topology.DefaultCapacity,
				Input:     core.InputConstraints{MaxDemand: topology.DefaultCapacity},
			}
			res, err := pr.Solve(cfg.searchOptions())
			if err != nil {
				return nil, err
			}
			rows = append(rows, Figure4aRow{
				Topology: g.Name(), Threshold: frac, NormGap: res.NormalizedGap,
			})
		}
	}
	return rows, nil
}

// Figure4bRow is the DP gap on one synthetic circle.
type Figure4bRow struct {
	Nodes, Neighbors int
	AvgPathLen       float64
	NormGap          float64
}

// Figure4b runs DP gap search on circles with growing average shortest-path
// length (more nodes, or fewer neighbors). Unlike the other experiments the
// circles use their *complete* demand set: restricting support to a fixed
// pair count would confound the path-length trend with demand density
// (circles are small enough for all pairs to stay tractable).
func Figure4b(cfg Config) ([]Figure4bRow, error) {
	cfg = cfg.withDefaults()
	cfg.Pairs = -1
	var rows []Figure4bRow
	shapes := []struct{ n, m int }{{5, 2}, {5, 1}, {6, 1}, {7, 1}, {8, 1}}
	for _, s := range shapes {
		g := topology.Circle(s.n, s.m)
		inst, err := cfg.instance(g)
		if err != nil {
			return nil, err
		}
		pr := &core.DPGapProblem{
			Inst:      inst,
			Threshold: 0.05 * topology.DefaultCapacity,
			Input:     core.InputConstraints{MaxDemand: topology.DefaultCapacity},
		}
		res, err := pr.Solve(cfg.searchOptions())
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure4bRow{
			Nodes: s.n, Neighbors: s.m,
			AvgPathLen: g.AvgShortestPathLen(),
			NormGap:    res.NormalizedGap,
		})
	}
	return rows, nil
}

// Figure5aRow compares how inputs tuned against R instantiations transfer
// to fresh random partitionings.
type Figure5aRow struct {
	Instantiations int
	TrainGap       float64 // gap on the partitionings optimized against
	TransferGap    float64 // mean gap on fresh partitionings
}

// Figure5a reproduces the single-sample brittleness result: inputs found
// against one random partitioning barely transfer, inputs found against the
// 5-sample average do.
func Figure5a(cfg Config) ([]Figure5aRow, error) {
	cfg = cfg.withDefaults()
	inst, err := cfg.instance(topology.B4())
	if err != nil {
		return nil, err
	}
	var rows []Figure5aRow
	for _, r := range []int{1, 5} {
		// Demands bounded at 40% of link capacity: with loose capacities the
		// generic fragmentation gap is small and the adversary must exploit
		// the *specific* sampled partitioning — the regime where Figure 5a's
		// brittleness shows.
		pr := &core.POPGapProblem{
			Inst: inst, Partitions: 2, Instantiations: r,
			Rng:   rand.New(rand.NewSource(cfg.Seed + int64(r))),
			Input: core.InputConstraints{MaxDemand: 0.4 * topology.DefaultCapacity},
		}
		res, err := pr.Solve(cfg.searchOptions())
		if err != nil {
			return nil, err
		}
		if res.Demands == nil {
			return nil, fmt.Errorf("experiments: fig5a found no incumbent (r=%d)", r)
		}
		transfer, err := core.POPTransferGap(inst, res.Demands, 2, 10,
			rand.New(rand.NewSource(cfg.Seed+100)))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure5aRow{Instantiations: r, TrainGap: res.Gap, TransferGap: transfer})
	}
	return rows, nil
}

// Figure5bRow is the POP gap at one (partitions, paths) point.
type Figure5bRow struct {
	Partitions, Paths int
	NormGap           float64
}

// Figure5b sweeps partition and path counts on B4: more partitions widen
// the gap, more paths narrow it.
func Figure5b(cfg Config) ([]Figure5bRow, error) {
	cfg = cfg.withDefaults()
	g := topology.B4()
	var rows []Figure5bRow
	run := func(partitions, paths int) error {
		c := cfg
		c.Paths = paths
		inst, err := c.instance(g)
		if err != nil {
			return err
		}
		pr := &core.POPGapProblem{
			Inst: inst, Partitions: partitions, Instantiations: 3,
			Rng:   rand.New(rand.NewSource(cfg.Seed + int64(10*partitions+paths))),
			Input: core.InputConstraints{MaxDemand: topology.DefaultCapacity},
		}
		res, err := pr.Solve(c.searchOptions())
		if err != nil {
			return err
		}
		rows = append(rows, Figure5bRow{Partitions: partitions, Paths: paths, NormGap: res.NormalizedGap})
		return nil
	}
	for _, parts := range []int{2, 3, 4} {
		if err := run(parts, cfg.Paths); err != nil {
			return nil, err
		}
	}
	for _, paths := range []int{1, 2, 3, 4} {
		if err := run(2, paths); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// Figure6Row is one problem-size/latency measurement.
type Figure6Row struct {
	Problem string
	Vars    int
	Linear  int
	SOS     int
	Latency time.Duration
}

// Figure6 measures optimization sizes and single-thread latencies on B4:
// the inner problems alone (OPT, DP, POP) versus the meta optimizations
// (DP+OPT, POP+OPT). The meta latency is the time the budgeted search runs,
// dominated — as in the paper — by the multiplicative (SOS) constraints.
func Figure6(cfg Config) ([]Figure6Row, error) {
	cfg = cfg.withDefaults()
	g := topology.B4()
	inst, err := cfg.instance(g)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	inst.Demands.Uniform(rng, 0, topology.DefaultCapacity)
	var rows []Figure6Row

	// Inner problems: size = LP vars/rows, latency = direct solve.
	nFlow := inst.NumFlowVars()
	start := time.Now()
	if _, err := mcf.SolveMaxFlow(inst); err != nil {
		return nil, err
	}
	rows = append(rows, Figure6Row{
		Problem: "OPT", Vars: nFlow,
		Linear: inst.Demands.Len() + g.NumEdges(), Latency: time.Since(start),
	})
	start = time.Now()
	if _, err := mcf.SolveDemandPinning(inst, 0.05*topology.DefaultCapacity); err != nil {
		return nil, err
	}
	rows = append(rows, Figure6Row{
		Problem: "DP", Vars: nFlow,
		Linear: inst.Demands.Len() + g.NumEdges(), Latency: time.Since(start),
	})
	start = time.Now()
	if _, err := mcf.SolvePOP(inst, mcf.POPOptions{Partitions: 2, Rng: rng}); err != nil {
		return nil, err
	}
	rows = append(rows, Figure6Row{
		Problem: "POP", Vars: nFlow,
		Linear: inst.Demands.Len() + 2*g.NumEdges(), Latency: time.Since(start),
	})

	// Meta problems: sizes from the built models, latency from the search.
	input := core.InputConstraints{MaxDemand: topology.DefaultCapacity}
	dpPr := &core.DPGapProblem{Inst: inst, Threshold: 0.05 * topology.DefaultCapacity, Input: input}
	dpStats, err := dpPr.Stats()
	if err != nil {
		return nil, err
	}
	start = time.Now()
	if _, err := dpPr.Solve(cfg.searchOptions()); err != nil {
		return nil, err
	}
	rows = append(rows, Figure6Row{
		Problem: "DP+OPT meta", Vars: dpStats.Vars, Linear: dpStats.LinearCons,
		SOS: dpStats.SOSPairs, Latency: time.Since(start),
	})
	popPr := &core.POPGapProblem{
		Inst: inst, Partitions: 2, Instantiations: 3,
		Rng: rand.New(rand.NewSource(cfg.Seed + 40)), Input: input,
	}
	popStats, err := popPr.Stats()
	if err != nil {
		return nil, err
	}
	popPr.Rng = rand.New(rand.NewSource(cfg.Seed + 40))
	start = time.Now()
	if _, err := popPr.Solve(cfg.searchOptions()); err != nil {
		return nil, err
	}
	rows = append(rows, Figure6Row{
		Problem: "POP+OPT meta", Vars: popStats.Vars, Linear: popStats.LinearCons,
		SOS: popStats.SOSPairs, Latency: time.Since(start),
	})
	return rows, nil
}
