package blackbox

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/obs"
)

// parallelOpts mirrors defaultOpts but with restart-level parallelism on.
func parallelOpts(seed int64, workers int) Options {
	o := defaultOpts(seed)
	o.Workers = workers
	return o
}

// TestParallelRestartsReproducible checks the Workers determinism contract:
// with a fixed Restarts count, the same seed must give identical Gap, Evals
// and Demands on repeated 4-worker runs AND across worker counts — the child
// restarts are seeded in restart order, so the schedule never reaches the
// answer. Run under -race in CI, this is also the no-data-race assertion for
// a 4-worker search.
func TestParallelRestartsReproducible(t *testing.T) {
	inst := figure1Instance(t)
	gapFn := DPGap(inst, 50)
	var ref *Result
	for _, workers := range []int{2, 4, 4, 8} {
		res, err := HillClimb(gapFn, 3, parallelOpts(9, workers))
		if err != nil {
			t.Fatal(err)
		}
		if res.Gap <= 0 || res.Gap > 100+1e-6 {
			t.Fatalf("workers=%d: gap %v out of range", workers, res.Gap)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Gap != ref.Gap || res.Evals != ref.Evals {
			t.Fatalf("workers=%d diverged: gap %v evals %d, want gap %v evals %d",
				workers, res.Gap, res.Evals, ref.Gap, ref.Evals)
		}
		for i := range ref.Demands {
			if res.Demands[i] != ref.Demands[i] {
				t.Fatalf("workers=%d: demand %d diverged: %v vs %v",
					workers, i, res.Demands[i], ref.Demands[i])
			}
		}
	}
}

// TestParallelSimulatedAnnealReproducible covers the annealed variant's
// parallel path, including its per-restart acceptance draws.
func TestParallelSimulatedAnnealReproducible(t *testing.T) {
	inst := figure1Instance(t)
	gapFn := DPGap(inst, 50)
	mk := func(workers int) SAOptions {
		return SAOptions{Options: parallelOpts(13, workers), T0: 500, Gamma: 0.1, KP: 100}
	}
	a, err := SimulatedAnneal(gapFn, 3, mk(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulatedAnneal(gapFn, 3, mk(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Gap != b.Gap || a.Evals != b.Evals {
		t.Fatalf("SA diverged across worker counts: %v/%d vs %v/%d", a.Gap, a.Evals, b.Gap, b.Evals)
	}
	if a.Gap <= 0 {
		t.Fatalf("no positive gap: %v", a.Gap)
	}
}

// TestParallelTraceMonotone checks the merged trace is a valid best-so-far
// series on the shared clock, and that a shared tracer survives concurrent
// emits from all restart goroutines (exercised under -race in CI).
func TestParallelTraceMonotone(t *testing.T) {
	inst := figure1Instance(t)
	col := &obs.Collector{}
	o := parallelOpts(17, 4)
	o.Tracer = obs.NewTracer(col)
	res, err := HillClimb(DPGap(inst, 50), 3, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace points")
	}
	best := math.Inf(-1)
	for i, tp := range res.Trace {
		if tp.Gap <= best {
			t.Fatalf("trace point %d not improving: %v after %v", i, tp.Gap, best)
		}
		best = tp.Gap
		if i > 0 && tp.Elapsed < res.Trace[i-1].Elapsed {
			t.Fatalf("trace time regressed at %d", i)
		}
	}
	if res.Trace[len(res.Trace)-1].Gap != res.Gap {
		t.Fatalf("last trace point %v != final gap %v", res.Trace[len(res.Trace)-1].Gap, res.Gap)
	}
	evs := col.Events()
	if len(evs) == 0 {
		t.Fatal("tracer saw no events from restart goroutines")
	}
	restarts := 0
	for _, e := range evs {
		if e.Kind == obs.KindRestart {
			restarts++
		}
	}
	if restarts != o.Restarts {
		t.Fatalf("tracer saw %d restart events, want %d", restarts, o.Restarts)
	}
}

// TestParallelBudgetMode exercises the lazy-seed path: no restart cap, just
// a small budget on 4 workers. The result must be well-formed; exact restart
// counts are timing-dependent by design.
func TestParallelBudgetMode(t *testing.T) {
	inst := figure1Instance(t)
	o := parallelOpts(21, 4)
	o.Restarts = 0
	o.Budget = 50 * 1e6 // 50ms
	res, err := HillClimb(DPGap(inst, 50), 3, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals == 0 || res.Demands == nil {
		t.Fatalf("budget-mode result incomplete: %+v", res)
	}
}

// TestInjectedRngOnly asserts the searches consume randomness only through
// the injected Rng: two Options built from equal seeds — with nothing else
// shared — must produce byte-identical outcomes, serial and parallel alike.
func TestInjectedRngOnly(t *testing.T) {
	inst := figure1Instance(t)
	gapFn := DPGap(inst, 50)
	for _, workers := range []int{1, 4} {
		a, err := HillClimb(gapFn, 3, parallelOpts(33, workers))
		if err != nil {
			t.Fatal(err)
		}
		b, err := HillClimb(gapFn, 3, Options{
			MaxDemand: 100, Sigma: 10, K: 100, Restarts: 6, Workers: workers,
			Rng: rand.New(rand.NewSource(33)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if a.Gap != b.Gap || a.Evals != b.Evals {
			t.Fatalf("workers=%d: independently-built equal seeds diverged: %v/%d vs %v/%d",
				workers, a.Gap, a.Evals, b.Gap, b.Evals)
		}
	}
}
