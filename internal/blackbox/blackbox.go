// Package blackbox implements the local-search baselines of Section 3.4:
// hill climbing (Algorithm 1) and simulated annealing. Both treat the gap
// function OPT(I) - Heuristic(I) as a black box over demand vectors and are
// the comparison points the white-box method beats in Figure 3.
package blackbox

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/mcf"
	"repro/internal/obs"
)

// GapFunc evaluates the gap for a demand vector. Implementations return
// -Inf for inputs on which the heuristic is infeasible (DP pinning can
// oversubscribe a link), which local search treats as "never move there".
type GapFunc func(demands []float64) (float64, error)

// DPGap returns the gap function OPT - DemandPinning on the instance.
func DPGap(inst *mcf.Instance, threshold float64) GapFunc {
	return func(d []float64) (float64, error) {
		at := inst.WithVolumes(d)
		dp, err := mcf.SolveDemandPinning(at, threshold)
		if errors.Is(err, mcf.ErrInfeasible) {
			return math.Inf(-1), nil
		}
		if err != nil {
			return 0, err
		}
		opt, err := mcf.SolveMaxFlow(at)
		if err != nil {
			return 0, err
		}
		return opt.Total - dp.Total, nil
	}
}

// ConcurrentDPGap returns the gap function for the max-concurrent-flow
// objective: lambda_OPT - lambda_DP. The white-box rewrite does not apply
// to this objective (its inner rows couple lambda with the outer demand
// volumes), so black-box search is the supported way to attack it.
func ConcurrentDPGap(inst *mcf.Instance, threshold float64) GapFunc {
	return func(d []float64) (float64, error) {
		at := inst.WithVolumes(d)
		_, lamDP, err := mcf.SolveDemandPinningConcurrent(at, threshold)
		if errors.Is(err, mcf.ErrInfeasible) {
			return math.Inf(-1), nil
		}
		if err != nil {
			return 0, err
		}
		_, lamOpt, err := mcf.SolveMaxConcurrent(at)
		if err != nil {
			return 0, err
		}
		return lamOpt - lamDP, nil
	}
}

// POPGap returns the gap function OPT - mean POP total over the given fixed
// partition assignments — the same descriptor the white-box search
// optimizes, so the two methods compete on equal footing.
func POPGap(inst *mcf.Instance, assignments [][]int, partitions int) GapFunc {
	return func(d []float64) (float64, error) {
		at := inst.WithVolumes(d)
		opt, err := mcf.SolveMaxFlow(at)
		if err != nil {
			return 0, err
		}
		n := at.Demands.Len()
		clients := make([]mcf.Client, n)
		for k := 0; k < n; k++ {
			clients[k] = mcf.Client{Demand: k, Volume: at.Demands.Volume(k)}
		}
		sum := 0.0
		for _, a := range assignments {
			f, err := mcf.SolvePOPAssigned(at, clients, a, partitions)
			if err != nil {
				return 0, err
			}
			sum += f.Total
		}
		return opt.Total - sum/float64(len(assignments)), nil
	}
}

// TracePoint records the best gap known at a moment of the search — the
// data behind Figure 3's gap-versus-time curves.
type TracePoint struct {
	Elapsed time.Duration
	Gap     float64
	Evals   int
}

// Result is the outcome of a local search.
type Result struct {
	Demands []float64
	Gap     float64
	Evals   int
	Elapsed time.Duration
	Trace   []TracePoint
}

// Options tunes both local searches. The paper's settings: Sigma is 10% of
// link capacity, K = 100 neighbor draws before declaring a local maximum,
// and the restart count is set by the latency budget.
type Options struct {
	// MinDemand/MaxDemand bound every demand (the search box).
	MinDemand, MaxDemand float64
	// Sigma is the neighbor-step standard deviation.
	Sigma float64
	// K is the patience: neighbors evaluated without improvement before the
	// current point is declared a local maximum (Algorithm 1's K).
	K int
	// Restarts caps random restarts (M_hc / M_sa); 0 means restart until
	// Budget expires.
	Restarts int
	// Budget is the wall-clock latency budget; 0 means no limit (Restarts
	// must then be positive).
	Budget time.Duration
	// Rng is required, keeping every search reproducible.
	Rng *rand.Rand
	// Tracer, if non-nil, receives structured events: a restart event per
	// random restart, move_accepted/move_rejected per neighbor evaluation,
	// and incumbent events (Source = "hill" or "anneal") whenever the best
	// known gap improves.
	Tracer *obs.Tracer
}

func (o *Options) validate() error {
	if o.MaxDemand <= 0 || o.MinDemand < 0 || o.MinDemand > o.MaxDemand {
		return fmt.Errorf("blackbox: bad demand box [%g, %g]", o.MinDemand, o.MaxDemand)
	}
	if o.Sigma <= 0 {
		return fmt.Errorf("blackbox: Sigma must be > 0")
	}
	if o.K <= 0 {
		return fmt.Errorf("blackbox: K must be > 0")
	}
	if o.Restarts <= 0 && o.Budget <= 0 {
		return fmt.Errorf("blackbox: need Restarts or Budget")
	}
	if o.Rng == nil {
		return fmt.Errorf("blackbox: need a seeded Rng")
	}
	return nil
}

func (o *Options) clamp(x float64) float64 {
	if x < o.MinDemand {
		return o.MinDemand
	}
	if x > o.MaxDemand {
		return o.MaxDemand
	}
	return x
}

func (o *Options) randomStart(n int) []float64 {
	d := make([]float64, n)
	for i := range d {
		d[i] = o.MinDemand + o.Rng.Float64()*(o.MaxDemand-o.MinDemand)
	}
	return d
}

func (o *Options) neighbor(d []float64) []float64 {
	out := make([]float64, len(d))
	for i := range d {
		out[i] = o.clamp(d[i] + o.Rng.NormFloat64()*o.Sigma)
	}
	return out
}

// search runs restarts of a single-start strategy, tracking the best point.
type search struct {
	opts    *Options
	method  string // "hill" or "anneal"; tags incumbent/restart events
	tr      *obs.Tracer
	start   time.Time
	best    []float64
	bestGap float64
	evals   int
	trace   []TracePoint
}

func newSearch(o *Options, method string) *search {
	return &search{opts: o, method: method, tr: o.Tracer,
		start: time.Now(), bestGap: math.Inf(-1)}
}

func (s *search) expired() bool {
	return s.opts.Budget > 0 && time.Since(s.start) >= s.opts.Budget
}

func (s *search) restarted() {
	s.tr.Emit(obs.Event{Kind: obs.KindRestart, Source: s.method,
		Objective: s.bestGap, Iters: s.evals})
}

// moved reports one neighbor evaluation's accept/reject outcome.
func (s *search) moved(accepted bool, gap float64) {
	k := obs.KindMoveReject
	if accepted {
		k = obs.KindMoveAccept
	}
	s.tr.Emit(obs.Event{Kind: k, Source: s.method, Objective: gap, Iters: s.evals})
}

func (s *search) observe(d []float64, gap float64) {
	s.evals++
	if gap > s.bestGap {
		s.bestGap = gap
		s.best = append([]float64(nil), d...)
		s.trace = append(s.trace, TracePoint{Elapsed: time.Since(s.start), Gap: gap, Evals: s.evals})
		s.tr.Emit(obs.Event{Kind: obs.KindIncumbent, Source: s.method,
			Objective: gap, Iters: s.evals})
	}
}

func (s *search) result() *Result {
	return &Result{
		Demands: s.best,
		Gap:     s.bestGap,
		Evals:   s.evals,
		Elapsed: time.Since(s.start),
		Trace:   s.trace,
	}
}

// HillClimb implements Algorithm 1 with random restarts.
func HillClimb(gap GapFunc, n int, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	s := newSearch(&opts, "hill")
	for restart := 0; opts.Restarts <= 0 || restart < opts.Restarts; restart++ {
		if s.expired() {
			break
		}
		s.restarted()
		d := opts.randomStart(n)
		g, err := gap(d)
		if err != nil {
			return nil, err
		}
		s.observe(d, g)
		for k := 0; k < opts.K && !s.expired(); k++ {
			aux := opts.neighbor(d)
			ag, err := gap(aux)
			if err != nil {
				return nil, err
			}
			s.observe(aux, ag)
			if ag > g {
				d, g = aux, ag
				k = -1 // Algorithm 1: reset patience on improvement
				s.moved(true, ag)
			} else {
				s.moved(false, ag)
			}
		}
		if opts.Budget <= 0 && opts.Restarts <= 0 {
			break
		}
	}
	return s.result(), nil
}

// SAOptions extends Options with the annealing schedule: temperature starts
// at T0 and is multiplied by Gamma every KP iterations (paper: T0 = 500,
// Gamma = 0.1, KP = 100).
type SAOptions struct {
	Options
	T0    float64
	Gamma float64
	KP    int
}

func (o *SAOptions) validate() error {
	if err := o.Options.validate(); err != nil {
		return err
	}
	if o.T0 <= 0 || o.Gamma <= 0 || o.Gamma >= 1 || o.KP <= 0 {
		return fmt.Errorf("blackbox: bad annealing schedule T0=%g Gamma=%g KP=%d", o.T0, o.Gamma, o.KP)
	}
	return nil
}

// SimulatedAnneal implements the annealed variant of Section 3.4: a
// non-improving neighbor is still accepted with probability
// exp((gap_aux - gap)/t).
func SimulatedAnneal(gap GapFunc, n int, opts SAOptions) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	s := newSearch(&opts.Options, "anneal")
	for restart := 0; opts.Restarts <= 0 || restart < opts.Restarts; restart++ {
		if s.expired() {
			break
		}
		s.restarted()
		d := opts.randomStart(n)
		g, err := gap(d)
		if err != nil {
			return nil, err
		}
		s.observe(d, g)
		temp := opts.T0
		sinceImprove := 0
		for iter := 0; sinceImprove < opts.K && !s.expired(); iter++ {
			if iter > 0 && iter%opts.KP == 0 {
				temp *= opts.Gamma
			}
			aux := opts.neighbor(d)
			ag, err := gap(aux)
			if err != nil {
				return nil, err
			}
			s.observe(aux, ag)
			switch {
			case ag > g:
				d, g = aux, ag
				sinceImprove = 0
				s.moved(true, ag)
			default:
				sinceImprove++
				// Accept downhill moves with annealing probability. A -Inf
				// gap (infeasible heuristic input) gives probability zero.
				if p := math.Exp((ag - g) / temp); opts.Rng.Float64() < p {
					d, g = aux, ag
					s.moved(true, ag)
				} else {
					s.moved(false, ag)
				}
			}
		}
		if opts.Budget <= 0 && opts.Restarts <= 0 {
			break
		}
	}
	return s.result(), nil
}
