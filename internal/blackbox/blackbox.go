// Package blackbox implements the local-search baselines of Section 3.4:
// hill climbing (Algorithm 1) and simulated annealing. Both treat the gap
// function OPT(I) - Heuristic(I) as a black box over demand vectors and are
// the comparison points the white-box method beats in Figure 3.
package blackbox

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/mcf"
	"repro/internal/obs"
)

// GapFunc evaluates the gap for a demand vector. Implementations return
// -Inf for inputs on which the heuristic is infeasible (DP pinning can
// oversubscribe a link), which local search treats as "never move there".
type GapFunc func(demands []float64) (float64, error)

// DPGap returns the gap function OPT - DemandPinning on the instance.
func DPGap(inst *mcf.Instance, threshold float64) GapFunc {
	return func(d []float64) (float64, error) {
		at := inst.WithVolumes(d)
		dp, err := mcf.SolveDemandPinning(at, threshold)
		if errors.Is(err, mcf.ErrInfeasible) {
			return math.Inf(-1), nil
		}
		if err != nil {
			return 0, err
		}
		opt, err := mcf.SolveMaxFlow(at)
		if err != nil {
			return 0, err
		}
		return opt.Total - dp.Total, nil
	}
}

// ConcurrentDPGap returns the gap function for the max-concurrent-flow
// objective: lambda_OPT - lambda_DP. The white-box rewrite does not apply
// to this objective (its inner rows couple lambda with the outer demand
// volumes), so black-box search is the supported way to attack it.
func ConcurrentDPGap(inst *mcf.Instance, threshold float64) GapFunc {
	return func(d []float64) (float64, error) {
		at := inst.WithVolumes(d)
		_, lamDP, err := mcf.SolveDemandPinningConcurrent(at, threshold)
		if errors.Is(err, mcf.ErrInfeasible) {
			return math.Inf(-1), nil
		}
		if err != nil {
			return 0, err
		}
		_, lamOpt, err := mcf.SolveMaxConcurrent(at)
		if err != nil {
			return 0, err
		}
		return lamOpt - lamDP, nil
	}
}

// POPGap returns the gap function OPT - mean POP total over the given fixed
// partition assignments — the same descriptor the white-box search
// optimizes, so the two methods compete on equal footing.
func POPGap(inst *mcf.Instance, assignments [][]int, partitions int) GapFunc {
	return func(d []float64) (float64, error) {
		at := inst.WithVolumes(d)
		opt, err := mcf.SolveMaxFlow(at)
		if err != nil {
			return 0, err
		}
		n := at.Demands.Len()
		clients := make([]mcf.Client, n)
		for k := 0; k < n; k++ {
			clients[k] = mcf.Client{Demand: k, Volume: at.Demands.Volume(k)}
		}
		sum := 0.0
		for _, a := range assignments {
			f, err := mcf.SolvePOPAssigned(at, clients, a, partitions)
			if err != nil {
				return 0, err
			}
			sum += f.Total
		}
		return opt.Total - sum/float64(len(assignments)), nil
	}
}

// TracePoint records the best gap known at a moment of the search — the
// data behind Figure 3's gap-versus-time curves.
type TracePoint struct {
	Elapsed time.Duration
	Gap     float64
	Evals   int
}

// Result is the outcome of a local search.
type Result struct {
	Demands []float64
	Gap     float64
	Evals   int
	Elapsed time.Duration
	Trace   []TracePoint
	// Interrupted is set when Options.Ctx was cancelled before the search
	// ran out of restarts or budget. Gap/Demands/Trace are still the valid
	// best-so-far; a budget expiry is a normal finish, not an interruption.
	Interrupted bool
}

// Options tunes both local searches. The paper's settings: Sigma is 10% of
// link capacity, K = 100 neighbor draws before declaring a local maximum,
// and the restart count is set by the latency budget.
type Options struct {
	// MinDemand/MaxDemand bound every demand (the search box).
	MinDemand, MaxDemand float64
	// Sigma is the neighbor-step standard deviation.
	Sigma float64
	// K is the patience: neighbors evaluated without improvement before the
	// current point is declared a local maximum (Algorithm 1's K).
	K int
	// Restarts caps random restarts (M_hc / M_sa); 0 means restart until
	// Budget expires.
	Restarts int
	// Budget is the wall-clock latency budget; 0 means no limit (Restarts
	// must then be positive).
	Budget time.Duration
	// Rng is required, keeping every search reproducible. With Workers > 1
	// it is used only to derive one child seed per restart (drawn in restart
	// order before any restart runs), so it must not be shared with a
	// concurrently running consumer.
	Rng *rand.Rand
	// Workers runs restarts concurrently on this many goroutines; 0 or 1 is
	// the classic sequential search. Each restart gets its own rand.Rand
	// seeded from Rng in restart order, so with a fixed Restarts count the
	// returned Gap, Demands and Evals are identical for every Workers value
	// (the restarts are independent; only wall clock changes). Under a pure
	// Budget the restart count itself depends on timing, parallel or not.
	Workers int
	// Tracer, if non-nil, receives structured events: a restart event per
	// random restart, move_accepted/move_rejected per neighbor evaluation,
	// and incumbent events (Source = "hill" or "anneal") whenever the best
	// known gap improves.
	Tracer *obs.Tracer
	// Ctx, if non-nil, cancels the search cooperatively: the best-so-far
	// result is returned with Result.Interrupted set.
	Ctx context.Context
	// Checkpoint, if non-empty, persists the restart ledger to this path
	// after completed restarts, atomically, so ResumeHillClimb /
	// ResumeSimulatedAnneal can finish a killed run with the identical Gap,
	// Demands and Evals. Checkpointing requires a positive Restarts cap and
	// selects the per-restart-seeded engine even at Workers <= 1 (that
	// engine's restart streams are what the ledger replays), so enabling it
	// changes which deterministic stream a given seed produces — but the
	// result is still a pure function of (seed, Restarts).
	Checkpoint string
	// CheckpointEvery writes the ledger every k completed restarts
	// (default: every one).
	CheckpointEvery int
	// CheckpointFS overrides the filesystem used for checkpoint writes; nil
	// selects the OS. The fault injector wraps this seam.
	CheckpointFS checkpoint.FS
}

func (o *Options) validate() error {
	if o.MaxDemand <= 0 || o.MinDemand < 0 || o.MinDemand > o.MaxDemand {
		return fmt.Errorf("blackbox: bad demand box [%g, %g]", o.MinDemand, o.MaxDemand)
	}
	if o.Sigma <= 0 {
		return fmt.Errorf("blackbox: Sigma must be > 0")
	}
	if o.K <= 0 {
		return fmt.Errorf("blackbox: K must be > 0")
	}
	if o.Restarts <= 0 && o.Budget <= 0 {
		return fmt.Errorf("blackbox: need Restarts or Budget")
	}
	if o.Rng == nil {
		return fmt.Errorf("blackbox: need a seeded Rng")
	}
	if o.Checkpoint != "" && o.Restarts <= 0 {
		return fmt.Errorf("blackbox: Checkpoint requires a positive Restarts cap (the ledger replays a fixed seed sequence)")
	}
	return nil
}

func (o *Options) clamp(x float64) float64 {
	if x < o.MinDemand {
		return o.MinDemand
	}
	if x > o.MaxDemand {
		return o.MaxDemand
	}
	return x
}

// randomStart and neighbor draw from an explicit rng so each restart can own
// an independent stream: sequential searches pass o.Rng (preserving the
// historical draw sequence per seed), parallel restarts pass their per-restart
// child rng.
func (o *Options) randomStart(rng *rand.Rand, n int) []float64 {
	d := make([]float64, n)
	for i := range d {
		d[i] = o.MinDemand + rng.Float64()*(o.MaxDemand-o.MinDemand)
	}
	return d
}

func (o *Options) neighbor(rng *rand.Rand, d []float64) []float64 {
	out := make([]float64, len(d))
	for i := range d {
		out[i] = o.clamp(d[i] + rng.NormFloat64()*o.Sigma)
	}
	return out
}

// search runs restarts of a single-start strategy, tracking the best point.
type search struct {
	opts    *Options
	method  string // "hill" or "anneal"; tags incumbent/restart events
	tr      *obs.Tracer
	start   time.Time
	best    []float64
	bestGap float64
	evals   int
	trace   []TracePoint
}

func newSearch(o *Options, method string) *search {
	return &search{opts: o, method: method, tr: o.Tracer,
		//gapvet:allow walltime the search clock anchors the Budget contract and trace timestamps
		start: time.Now(), bestGap: math.Inf(-1)}
}

func (s *search) expired() bool {
	//gapvet:allow walltime Budget is an explicit wall-clock latency contract (paper Section 3.4)
	return s.opts.Budget > 0 && time.Since(s.start) >= s.opts.Budget
}

// cancelled reports cooperative cancellation; unlike a budget expiry it
// marks the result Interrupted.
func (s *search) cancelled() bool {
	return s.opts.Ctx != nil && s.opts.Ctx.Err() != nil
}

// stopped is the restart loops' combined stop test: out of budget or
// cancelled.
func (s *search) stopped() bool { return s.expired() || s.cancelled() }

func (s *search) restarted() {
	s.tr.Emit(obs.Event{Kind: obs.KindRestart, Source: s.method,
		Objective: s.bestGap, Iters: s.evals})
}

// moved reports one neighbor evaluation's accept/reject outcome.
func (s *search) moved(accepted bool, gap float64) {
	k := obs.KindMoveReject
	if accepted {
		k = obs.KindMoveAccept
	}
	s.tr.Emit(obs.Event{Kind: k, Source: s.method, Objective: gap, Iters: s.evals})
}

func (s *search) observe(d []float64, gap float64) {
	s.evals++
	if gap > s.bestGap {
		s.bestGap = gap
		s.best = append([]float64(nil), d...)
		//gapvet:allow walltime trace timestamps are reporting-only
		s.trace = append(s.trace, TracePoint{Elapsed: time.Since(s.start), Gap: gap, Evals: s.evals})
		s.tr.Emit(obs.Event{Kind: obs.KindIncumbent, Source: s.method,
			Objective: gap, Iters: s.evals})
	}
}

func (s *search) result() *Result {
	return &Result{
		Demands: s.best,
		Gap:     s.bestGap,
		Evals:   s.evals,
		Elapsed: time.Since(s.start), //gapvet:allow walltime elapsed-time reporting only
		Trace:   s.trace,
	}
}

// hillRestart runs one random restart of Algorithm 1 on s, drawing from rng.
func hillRestart(s *search, gap GapFunc, n int, rng *rand.Rand) error {
	opts := s.opts
	s.restarted()
	d := opts.randomStart(rng, n)
	g, err := gap(d)
	if err != nil {
		return err
	}
	s.observe(d, g)
	for k := 0; k < opts.K && !s.stopped(); k++ {
		aux := opts.neighbor(rng, d)
		ag, err := gap(aux)
		if err != nil {
			return err
		}
		s.observe(aux, ag)
		if ag > g {
			d, g = aux, ag
			k = -1 // Algorithm 1: reset patience on improvement
			s.moved(true, ag)
		} else {
			s.moved(false, ag)
		}
	}
	return nil
}

// HillClimb implements Algorithm 1 with random restarts. Options.Workers > 1
// runs the restarts concurrently (see Options.Workers for the determinism
// contract).
func HillClimb(gap GapFunc, n int, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	restart := func(s *search, rng *rand.Rand) error { return hillRestart(s, gap, n, rng) }
	if opts.Workers > 1 || opts.Checkpoint != "" {
		return parallelRestarts(&opts, "hill", searchFingerprint("hill", n, &opts, 0, 0, 0), nil, restart)
	}
	return serialRestarts(&opts, "hill", restart)
}

// serialRestarts is the classic loop: every restart draws from the caller's
// Rng in sequence, so per-seed behavior matches the original single-threaded
// implementation exactly.
func serialRestarts(o *Options, method string, body func(*search, *rand.Rand) error) (*Result, error) {
	s := newSearch(o, method)
	for restart := 0; o.Restarts <= 0 || restart < o.Restarts; restart++ {
		if s.stopped() {
			break
		}
		if err := body(s, o.Rng); err != nil {
			return nil, err
		}
	}
	r := s.result()
	r.Interrupted = s.cancelled()
	return r, nil
}

// parallelRestarts fans the restarts out over o.Workers goroutines. Each
// restart index i gets a child rand.Rand seeded by the i-th draw from o.Rng
// and a private child search (own best/evals/trace, shared clock and tracer);
// completed children are merged in restart order, so for a fixed Restarts
// count the merged result is a pure function of the seed — the worker count
// and the goroutine schedule never reach the answer.
//
// The same per-restart independence is what makes checkpoint/resume exact:
// the ledger stores the pre-drawn seed sequence plus every completed
// restart's outcome, so a resumed run (resume != nil) re-runs only the
// missing indices from their original seeds and merges to the identical
// Gap, Demands and Evals.
func parallelRestarts(o *Options, method string, fp uint64, resume *checkpoint.BlackboxState, body func(*search, *rand.Rand) error) (*Result, error) {
	root := newSearch(o, method)
	var ckpt *checkpoint.Writer
	ckptEvery := 1
	if o.Checkpoint != "" {
		ckpt = &checkpoint.Writer{Path: o.Checkpoint, FS: o.CheckpointFS}
		if o.CheckpointEvery > 1 {
			ckptEvery = o.CheckpointEvery
		}
	}

	// Child seeds are the ONLY draws from the shared Rng, made in restart
	// order. With a restart cap they are all drawn up front; in pure budget
	// mode they are drawn lazily (still in index order) under the mutex. A
	// resumed run replays the snapshot's sequence verbatim and never
	// consults o.Rng.
	var seedMu sync.Mutex
	var seeds []int64
	prior := map[int]*search{}
	var ledger []checkpoint.RestartState
	if resume != nil {
		seeds = append([]int64(nil), resume.Seeds...)
		// Backdate the shared clock by the wall time the killed run already
		// consumed, so Budget and trace timestamps continue instead of
		// restarting from zero.
		root.start = root.start.Add(-time.Duration(resume.ElapsedNanos))
		for _, rs := range resume.Completed {
			prior[int(rs.Index)] = restartIn(o, method, root.start, rs)
			ledger = append(ledger, rs)
		}
		root.tr.Emit(obs.Event{Kind: obs.KindResume, Source: method,
			Iters: len(prior), Detail: o.Checkpoint})
	} else if o.Restarts > 0 {
		seeds = make([]int64, o.Restarts)
		for i := range seeds {
			seeds[i] = o.Rng.Int63()
		}
	}
	seedFor := func(i int) int64 {
		seedMu.Lock()
		defer seedMu.Unlock()
		for len(seeds) <= i {
			seeds = append(seeds, o.Rng.Int63())
		}
		return seeds[i]
	}

	workers := o.Workers
	if workers < 1 {
		workers = 1
	}
	if o.Restarts > 0 && workers > o.Restarts {
		workers = o.Restarts
	}
	type child struct {
		idx int
		s   *search
	}
	var (
		next      atomic.Int64
		mu        sync.Mutex
		done      []child
		completed int
		firstErr  error
		wg        sync.WaitGroup
	)
	// writeCheckpoint persists the ledger (called with mu held). A failed
	// write is reported and otherwise ignored: the previous good snapshot
	// survives, and losing a checkpoint must never lose the search.
	writeCheckpoint := func() {
		if ckpt == nil || completed%ckptEvery != 0 {
			return
		}
		st := &checkpoint.BlackboxState{
			Fingerprint: fp,
			Method:      method,
			Seeds:       append([]int64(nil), seeds...),
			//gapvet:allow walltime checkpointed elapsed time is reporting/budget state, not search logic
			ElapsedNanos: time.Since(root.start).Nanoseconds(),
			Completed:    append([]checkpoint.RestartState(nil), ledger...),
		}
		sort.Slice(st.Completed, func(i, j int) bool { return st.Completed[i].Index < st.Completed[j].Index })
		if err := ckpt.Save(&checkpoint.Snapshot{Blackbox: st}); err != nil {
			root.tr.Emit(obs.Event{Kind: obs.KindCheckpointWrite, Source: method,
				Status: "error", Detail: err.Error()})
			return
		}
		root.tr.Emit(obs.Event{Kind: obs.KindCheckpointWrite, Source: method,
			Status: "ok", Detail: o.Checkpoint})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !root.stopped() {
				i := int(next.Add(1)) - 1
				if o.Restarts > 0 && i >= o.Restarts {
					return
				}
				if _, ok := prior[i]; ok {
					continue // already completed by the checkpointed run
				}
				cs := &search{opts: o, method: method, tr: o.Tracer,
					start: root.start, bestGap: math.Inf(-1)}
				err := body(cs, rand.New(rand.NewSource(seedFor(i))))
				mu.Lock()
				done = append(done, child{idx: i, s: cs})
				if err == nil && !root.stopped() {
					// Only restarts that ran to natural completion enter the
					// ledger: one cut short by the budget or a cancellation
					// still counts toward THIS run's best-so-far, but a
					// resumed run must re-run it in full to stay exact.
					ledger = append(ledger, restartOut(i, cs))
					completed++
					writeCheckpoint()
				}
				if err != nil && firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for i, cs := range prior {
		done = append(done, child{idx: i, s: cs})
	}

	// Merge in restart order: the best gap wins with ties broken by the
	// lowest restart index (the serial loop's "first found" rule), evals sum.
	sort.Slice(done, func(i, j int) bool { return done[i].idx < done[j].idx })
	for _, c := range done {
		root.evals += c.s.evals
		if c.s.best != nil && c.s.bestGap > root.bestGap {
			root.bestGap = c.s.bestGap
			root.best = c.s.best
		}
	}
	// Stitch the per-restart traces into one monotone best-so-far series on
	// the shared clock. TracePoint.Evals stays the recording child's local
	// count (a global count would impose an ordering on concurrent evals
	// that never existed).
	var merged []TracePoint
	for _, c := range done {
		merged = append(merged, c.s.trace...)
	}
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Elapsed < merged[j].Elapsed })
	bestSoFar := math.Inf(-1)
	for _, tp := range merged {
		if tp.Gap > bestSoFar {
			bestSoFar = tp.Gap
			root.trace = append(root.trace, tp)
		}
	}
	r := root.result()
	r.Interrupted = root.cancelled()
	return r, nil
}

// SAOptions extends Options with the annealing schedule: temperature starts
// at T0 and is multiplied by Gamma every KP iterations (paper: T0 = 500,
// Gamma = 0.1, KP = 100).
type SAOptions struct {
	Options
	T0    float64
	Gamma float64
	KP    int
}

func (o *SAOptions) validate() error {
	if err := o.Options.validate(); err != nil {
		return err
	}
	if o.T0 <= 0 || o.Gamma <= 0 || o.Gamma >= 1 || o.KP <= 0 {
		return fmt.Errorf("blackbox: bad annealing schedule T0=%g Gamma=%g KP=%d", o.T0, o.Gamma, o.KP)
	}
	return nil
}

// saRestart runs one annealed restart on s, drawing from rng.
func saRestart(s *search, gap GapFunc, n int, opts *SAOptions, rng *rand.Rand) error {
	s.restarted()
	d := opts.randomStart(rng, n)
	g, err := gap(d)
	if err != nil {
		return err
	}
	s.observe(d, g)
	temp := opts.T0
	sinceImprove := 0
	for iter := 0; sinceImprove < opts.K && !s.stopped(); iter++ {
		if iter > 0 && iter%opts.KP == 0 {
			temp *= opts.Gamma
		}
		aux := opts.neighbor(rng, d)
		ag, err := gap(aux)
		if err != nil {
			return err
		}
		s.observe(aux, ag)
		switch {
		case ag > g:
			d, g = aux, ag
			sinceImprove = 0
			s.moved(true, ag)
		default:
			sinceImprove++
			// Accept downhill moves with annealing probability. A -Inf
			// gap (infeasible heuristic input) gives probability zero.
			if p := math.Exp((ag - g) / temp); rng.Float64() < p {
				d, g = aux, ag
				s.moved(true, ag)
			} else {
				s.moved(false, ag)
			}
		}
	}
	return nil
}

// SimulatedAnneal implements the annealed variant of Section 3.4: a
// non-improving neighbor is still accepted with probability
// exp((gap_aux - gap)/t). Options.Workers > 1 runs the restarts concurrently
// (see Options.Workers for the determinism contract).
func SimulatedAnneal(gap GapFunc, n int, opts SAOptions) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	restart := func(s *search, rng *rand.Rand) error { return saRestart(s, gap, n, &opts, rng) }
	if opts.Workers > 1 || opts.Checkpoint != "" {
		fp := searchFingerprint("anneal", n, &opts.Options, opts.T0, opts.Gamma, opts.KP)
		return parallelRestarts(&opts.Options, "anneal", fp, nil, restart)
	}
	return serialRestarts(&opts.Options, "anneal", restart)
}
