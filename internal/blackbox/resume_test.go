package blackbox

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/checkpoint"
)

// checkpointedOpts is defaultOpts with the ledger enabled (which selects the
// per-restart-seeded engine, the stream the ledger replays).
func checkpointedOpts(t *testing.T, seed int64) Options {
	t.Helper()
	o := defaultOpts(seed)
	o.Checkpoint = filepath.Join(t.TempDir(), "bb.ckpt")
	return o
}

// TestResumeFromTruncatedLedgerMatchesFull: a full checkpointed run writes
// the complete restart ledger; dropping any suffix of completed restarts
// and resuming must re-run exactly the missing ones to the bit-identical
// Gap, Demands and Evals — at a different worker count, too.
func TestResumeFromTruncatedLedgerMatchesFull(t *testing.T) {
	inst := figure1Instance(t)
	gap := DPGap(inst, 50)
	opts := checkpointedOpts(t, 5)
	full, err := HillClimb(gap, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := checkpoint.Load(opts.Checkpoint)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	st := snap.Blackbox
	if st == nil || st.Method != "hill" || len(st.Completed) != opts.Restarts {
		t.Fatalf("bad final ledger: %+v", st)
	}
	for keep := 0; keep < len(st.Completed); keep++ {
		trunc := *st
		trunc.Completed = st.Completed[:keep]
		for _, workers := range []int{1, 3} {
			ropts := defaultOpts(999) // Rng is required but never drawn from on resume
			ropts.Workers = workers
			res, err := ResumeHillClimb(gap, 3, ropts, &trunc)
			if err != nil {
				t.Fatalf("resume keep=%d workers=%d: %v", keep, workers, err)
			}
			if res.Gap != full.Gap || res.Evals != full.Evals {
				t.Fatalf("resume keep=%d workers=%d diverged: gap=%v evals=%d, want %v/%d",
					keep, workers, res.Gap, res.Evals, full.Gap, full.Evals)
			}
			for i, d := range full.Demands {
				if res.Demands[i] != d {
					t.Fatalf("resume keep=%d workers=%d: Demands[%d]=%v, want %v", keep, workers, i, res.Demands[i], d)
				}
			}
		}
	}
}

func TestResumeSimulatedAnnealMatchesFull(t *testing.T) {
	inst := figure1Instance(t)
	gap := DPGap(inst, 50)
	opts := SAOptions{Options: checkpointedOpts(t, 5), T0: 500, Gamma: 0.1, KP: 100}
	opts.Restarts = 4
	full, err := SimulatedAnneal(gap, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := checkpoint.Load(opts.Checkpoint)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	trunc := *snap.Blackbox
	trunc.Completed = trunc.Completed[:1]
	ropts := opts
	ropts.Rng = defaultOpts(999).Rng
	res, err := ResumeSimulatedAnneal(gap, 3, ropts, &trunc)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if res.Gap != full.Gap || res.Evals != full.Evals {
		t.Fatalf("resume diverged: gap=%v evals=%d, want %v/%d", res.Gap, res.Evals, full.Gap, full.Evals)
	}
}

func TestResumeValidation(t *testing.T) {
	inst := figure1Instance(t)
	gap := DPGap(inst, 50)
	opts := checkpointedOpts(t, 5)
	if _, err := HillClimb(gap, 3, opts); err != nil {
		t.Fatal(err)
	}
	snap, err := checkpoint.Load(opts.Checkpoint)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	st := snap.Blackbox

	if _, err := ResumeHillClimb(gap, 3, opts, nil); err == nil {
		t.Fatal("nil state accepted")
	}
	sa := SAOptions{Options: opts, T0: 500, Gamma: 0.1, KP: 100}
	if _, err := ResumeSimulatedAnneal(gap, 3, sa, st); err == nil {
		t.Fatal("hill ledger accepted by the annealer")
	}
	var mm *checkpoint.MismatchError
	diff := opts
	diff.Sigma = 11
	if _, err := ResumeHillClimb(gap, 3, diff, st); !errors.As(err, &mm) {
		t.Fatalf("fingerprint mismatch not rejected: %v", err)
	}
	budget := opts
	budget.Restarts = 0
	budget.Budget = 1 // validate() would otherwise reject the options outright
	budget.Checkpoint = ""
	if _, err := ResumeHillClimb(gap, 3, budget, st); err == nil {
		t.Fatal("budget-only resume accepted")
	}
}

func TestCheckpointRequiresRestarts(t *testing.T) {
	opts := defaultOpts(1)
	opts.Restarts = 0
	opts.Budget = time.Second
	opts.Checkpoint = filepath.Join(t.TempDir(), "bb.ckpt")
	if _, err := HillClimb(func(d []float64) (float64, error) { return 0, nil }, 1, opts); err == nil {
		t.Fatal("budget-only checkpointing accepted")
	}
}

func TestContextCancelMarksInterrupted(t *testing.T) {
	inst := figure1Instance(t)
	gap := DPGap(inst, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 3} {
		opts := defaultOpts(1)
		opts.Workers = workers
		opts.Ctx = ctx
		res, err := HillClimb(gap, 3, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !res.Interrupted {
			t.Fatalf("workers=%d: cancelled search not marked Interrupted", workers)
		}
	}
	// An un-cancelled run is never marked interrupted (budget expiry included).
	opts := defaultOpts(1)
	res, err := HillClimb(gap, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Fatal("normal finish marked Interrupted")
	}
}
