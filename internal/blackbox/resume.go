package blackbox

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"

	"repro/internal/checkpoint"
)

// searchFingerprint hashes everything that determines a restart's outcome
// from its seed: the method, the demand dimension, the restart cap, the
// search box and step, the patience, and (for annealing) the schedule.
// Workers and Budget are deliberately excluded — a ledger checkpointed
// under 4 workers may resume under 1, and the remaining budget is carried
// in the snapshot itself.
func searchFingerprint(method string, n int, o *Options, t0, gamma float64, kp int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(method))
	var buf [8]byte
	mix := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	mix(uint64(n))
	mix(uint64(o.Restarts))
	mix(uint64(o.K))
	mix(math.Float64bits(o.MinDemand))
	mix(math.Float64bits(o.MaxDemand))
	mix(math.Float64bits(o.Sigma))
	mix(math.Float64bits(t0))
	mix(math.Float64bits(gamma))
	mix(uint64(kp))
	return h.Sum64()
}

// restartOut converts one completed child search to its ledger form.
func restartOut(idx int, s *search) checkpoint.RestartState {
	rs := checkpoint.RestartState{Index: int64(idx), Gap: s.bestGap, Evals: int64(s.evals)}
	if s.best != nil {
		rs.HasBest = true
		rs.Best = append([]float64(nil), s.best...)
	}
	if len(s.trace) > 0 {
		rs.Trace = make([]checkpoint.TracePoint, len(s.trace))
		for i, tp := range s.trace {
			rs.Trace[i] = checkpoint.TracePoint{
				ElapsedNanos: tp.Elapsed.Nanoseconds(),
				Objective:    tp.Gap,
				Nodes:        int64(tp.Evals),
			}
		}
	}
	return rs
}

// restartIn reconstructs a completed child search from its ledger form, on
// the (backdated) shared clock, so the merge step treats it exactly like a
// child that ran in this process.
func restartIn(o *Options, method string, start time.Time, rs checkpoint.RestartState) *search {
	s := &search{opts: o, method: method, tr: o.Tracer, start: start, bestGap: rs.Gap, evals: int(rs.Evals)}
	if rs.HasBest {
		s.best = append([]float64(nil), rs.Best...)
	}
	if len(rs.Trace) > 0 {
		s.trace = make([]TracePoint, len(rs.Trace))
		for i, tp := range rs.Trace {
			s.trace[i] = TracePoint{
				Elapsed: time.Duration(tp.ElapsedNanos),
				Gap:     tp.Objective,
				Evals:   int(tp.Nodes),
			}
		}
	}
	return s
}

// resumeCheck validates a snapshot against the search it is asked to
// continue.
func resumeCheck(st *checkpoint.BlackboxState, method string, fp uint64, o *Options) error {
	if st == nil {
		return fmt.Errorf("blackbox: Resume called with a nil state")
	}
	if o.Restarts <= 0 {
		return fmt.Errorf("blackbox: Resume requires a positive Restarts cap")
	}
	if st.Method != method {
		return fmt.Errorf("blackbox: snapshot is a %q search, want %q", st.Method, method)
	}
	if st.Fingerprint != fp {
		return &checkpoint.MismatchError{What: "search fingerprint", Want: st.Fingerprint, Got: fp}
	}
	if len(st.Seeds) != o.Restarts {
		return fmt.Errorf("blackbox: snapshot carries %d seeds, want %d", len(st.Seeds), o.Restarts)
	}
	return nil
}

// ResumeHillClimb continues a hill-climbing search from a checkpoint written
// by a previous HillClimb with Options.Checkpoint set, under the same
// search-determining options (Workers may differ freely). Only the restarts
// missing from the ledger are re-run, from their original seeds, so the
// final Gap, Demands and Evals are identical to the run that was never
// killed.
func ResumeHillClimb(gap GapFunc, n int, opts Options, st *checkpoint.BlackboxState) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	fp := searchFingerprint("hill", n, &opts, 0, 0, 0)
	if err := resumeCheck(st, "hill", fp, &opts); err != nil {
		return nil, err
	}
	restart := func(s *search, rng *rand.Rand) error { return hillRestart(s, gap, n, rng) }
	return parallelRestarts(&opts, "hill", fp, st, restart)
}

// ResumeSimulatedAnneal is ResumeHillClimb's annealed counterpart.
func ResumeSimulatedAnneal(gap GapFunc, n int, opts SAOptions, st *checkpoint.BlackboxState) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	fp := searchFingerprint("anneal", n, &opts.Options, opts.T0, opts.Gamma, opts.KP)
	if err := resumeCheck(st, "anneal", fp, &opts.Options); err != nil {
		return nil, err
	}
	restart := func(s *search, rng *rand.Rand) error { return saRestart(s, gap, n, &opts, rng) }
	return parallelRestarts(&opts.Options, "anneal", fp, st, restart)
}
