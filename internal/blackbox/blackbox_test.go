package blackbox

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/demand"
	"repro/internal/mcf"
	"repro/internal/topology"
)

func figure1Instance(t *testing.T) *mcf.Instance {
	t.Helper()
	g := topology.Figure1()
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	inst, err := mcf.NewInstance(g, set, 2)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func defaultOpts(seed int64) Options {
	return Options{
		MaxDemand: 100,
		Sigma:     10, // 10% of link capacity, as in the paper
		K:         100,
		Restarts:  6,
		Rng:       rand.New(rand.NewSource(seed)),
	}
}

func TestDPGapFuncMatchesDirectSolvers(t *testing.T) {
	inst := figure1Instance(t)
	gap := DPGap(inst, 50)
	g, err := gap([]float64{100, 100, 50})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-100) > 1e-5 {
		t.Fatalf("gap=%v, want 100", g)
	}
	// Infeasible pinning maps to -Inf, not an error: with threshold 60,
	// demands 0->1: 60 and 0->2: 60 are both pinned and share edge 0->1
	// (capacity 100).
	gap60 := DPGap(inst, 60)
	g, err = gap60([]float64{60, 0, 60})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(g, -1) {
		t.Fatalf("infeasible input gap=%v, want -Inf", g)
	}
}

func TestHillClimbFindsPositiveGapOnFigure1(t *testing.T) {
	inst := figure1Instance(t)
	res, err := HillClimb(DPGap(inst, 50), 3, defaultOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Gap <= 0 {
		t.Fatalf("hill climbing found no positive gap (%v)", res.Gap)
	}
	if res.Gap > 100+1e-6 {
		t.Fatalf("gap %v exceeds the known optimum 100", res.Gap)
	}
	if res.Evals == 0 || res.Demands == nil {
		t.Fatalf("result incomplete: %+v", res)
	}
	// Trace must be nondecreasing in gap and time.
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Gap < res.Trace[i-1].Gap {
			t.Fatalf("trace regressed at %d", i)
		}
		if res.Trace[i].Elapsed < res.Trace[i-1].Elapsed {
			t.Fatalf("trace time regressed at %d", i)
		}
	}
}

func TestSimulatedAnnealFindsPositiveGapOnFigure1(t *testing.T) {
	inst := figure1Instance(t)
	opts := SAOptions{Options: defaultOpts(2), T0: 500, Gamma: 0.1, KP: 100}
	res, err := SimulatedAnneal(DPGap(inst, 50), 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Gap <= 0 {
		t.Fatalf("simulated annealing found no positive gap (%v)", res.Gap)
	}
	if res.Gap > 100+1e-6 {
		t.Fatalf("gap %v exceeds the known optimum 100", res.Gap)
	}
}

func TestBudgetStopsSearch(t *testing.T) {
	inst := figure1Instance(t)
	opts := defaultOpts(3)
	opts.Restarts = 0
	opts.Budget = 30 * time.Millisecond
	start := time.Now()
	res, err := HillClimb(DPGap(inst, 50), 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("budget ignored: ran %v", elapsed)
	}
	if res.Evals == 0 {
		t.Fatal("no evaluations before budget")
	}
}

func TestPOPGapFunc(t *testing.T) {
	g := topology.Line(3)
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	inst, err := mcf.NewInstance(g, set, 1)
	if err != nil {
		t.Fatal(err)
	}
	assignments := [][]int{{0, 0, 1}, {0, 1, 0}}
	gap := POPGap(inst, assignments, 2)
	v, err := gap([]float64{100, 100, 0})
	if err != nil {
		t.Fatal(err)
	}
	// OPT carries 200. Each POP partition halves capacities to 50:
	// assignment {0,0,1}: partition 0 carries 50+50, partition 1 carries 0
	// => 100. Assignment {0,1,0}: partitions carry 50 and 50 => 100.
	// Mean POP = 100, gap = 100.
	if math.Abs(v-100) > 1e-5 {
		t.Fatalf("POP gap=%v, want 100", v)
	}
}

func TestOptionsValidation(t *testing.T) {
	inst := figure1Instance(t)
	gap := DPGap(inst, 50)
	bad := []Options{
		{},
		{MaxDemand: 10, Sigma: 1, K: 10, Restarts: 1}, // no rng
		{MaxDemand: 10, Sigma: 0, K: 10, Restarts: 1, Rng: rand.New(rand.NewSource(1))},
		{MaxDemand: 10, Sigma: 1, K: 0, Restarts: 1, Rng: rand.New(rand.NewSource(1))},
		{MaxDemand: 10, Sigma: 1, K: 10, Rng: rand.New(rand.NewSource(1))}, // no restarts/budget
		{MaxDemand: 10, MinDemand: 20, Sigma: 1, K: 10, Restarts: 1, Rng: rand.New(rand.NewSource(1))},
	}
	for i, o := range bad {
		if _, err := HillClimb(gap, 3, o); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
	badSA := []SAOptions{
		{Options: defaultOpts(1), T0: 0, Gamma: 0.1, KP: 10},
		{Options: defaultOpts(1), T0: 10, Gamma: 1.5, KP: 10},
		{Options: defaultOpts(1), T0: 10, Gamma: 0.1, KP: 0},
	}
	for i, o := range badSA {
		if _, err := SimulatedAnneal(gap, 3, o); err == nil {
			t.Fatalf("SA case %d: expected validation error", i)
		}
	}
}

func TestNeighborRespectsBox(t *testing.T) {
	o := defaultOpts(5)
	o.MinDemand = 2
	d := []float64{2, 100, 50}
	for i := 0; i < 50; i++ {
		nb := o.neighbor(o.Rng, d)
		for _, x := range nb {
			if x < 2 || x > 100 {
				t.Fatalf("neighbor %v out of box", x)
			}
		}
	}
}

func TestSearchIsDeterministicPerSeed(t *testing.T) {
	inst := figure1Instance(t)
	a, err := HillClimb(DPGap(inst, 50), 3, defaultOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := HillClimb(DPGap(inst, 50), 3, defaultOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Gap != b.Gap || a.Evals != b.Evals {
		t.Fatalf("same seed diverged: %v/%d vs %v/%d", a.Gap, a.Evals, b.Gap, b.Evals)
	}
}

func TestConcurrentDPGapFunc(t *testing.T) {
	inst := figure1Instance(t)
	gap := ConcurrentDPGap(inst, 50)
	// Figure-1 demands: OPT lambda 1, DP lambda 0.5 => gap 0.5.
	g, err := gap([]float64{100, 100, 50})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-0.5) > 1e-5 {
		t.Fatalf("gap=%v, want 0.5", g)
	}
	// Infeasible pinning maps to -Inf.
	gap60 := ConcurrentDPGap(inst, 60)
	g, err = gap60([]float64{60, 0, 60})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(g, -1) {
		t.Fatalf("gap=%v, want -Inf", g)
	}
	// And hill climbing composes with the concurrent oracle.
	res, err := HillClimb(ConcurrentDPGap(inst, 50), 3, defaultOpts(21))
	if err != nil {
		t.Fatal(err)
	}
	if res.Gap <= 0 {
		t.Fatalf("no positive concurrent gap found: %v", res.Gap)
	}
}
